"""Tests for repro.topology.grid builders."""

import numpy as np
import pytest

from repro.topology.grid import (
    grid_topology,
    linear_topology,
    ring_topology,
    star_topology,
)


class TestGrid:
    def test_paper_4x4(self):
        topo = grid_topology(4, 4, capacity=100.0)
        assert topo.num_partitions == 16
        assert topo.total_capacity() == 1600.0
        # Opposite corners of a 4x4 grid are Manhattan distance 6 apart.
        assert topo.cost_matrix.max() == 6.0
        assert np.array_equal(topo.cost_matrix, topo.delay_matrix)

    def test_2x2_matches_paper_example(self):
        topo = grid_topology(2, 2, capacity=1.0)
        expected = np.array(
            [[0, 1, 1, 2], [1, 0, 2, 1], [1, 2, 0, 1], [2, 1, 1, 0]], dtype=float
        )
        assert np.array_equal(topo.cost_matrix, expected)

    def test_per_slot_capacities(self):
        topo = grid_topology(1, 3, capacity=[1.0, 2.0, 3.0])
        assert np.array_equal(topo.capacities(), [1.0, 2.0, 3.0])

    def test_capacity_count_mismatch(self):
        with pytest.raises(ValueError, match="expected 4"):
            grid_topology(2, 2, capacity=[1.0, 2.0])

    def test_pitch_scales_distances(self):
        topo = grid_topology(1, 2, capacity=1.0, pitch=2.5)
        assert topo.cost_matrix[0, 1] == 2.5

    def test_uniform_metric(self):
        topo = grid_topology(2, 2, capacity=1.0, metric="uniform")
        off_diag = topo.cost_matrix[0, 1:]
        assert np.array_equal(off_diag, np.ones(3))

    def test_euclidean_metric(self):
        topo = grid_topology(2, 2, capacity=1.0, metric="euclidean")
        assert topo.cost_matrix[0, 3] == pytest.approx(np.sqrt(2))

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            grid_topology(2, 2, capacity=1.0, metric="chebyshev")

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            grid_topology(0, 4, capacity=1.0)

    def test_positions_stored(self):
        topo = grid_topology(2, 3, capacity=1.0)
        assert topo.positions().shape == (6, 2)


class TestLinear:
    def test_is_1xn_grid(self):
        topo = linear_topology(4, capacity=2.0)
        assert topo.num_partitions == 4
        assert topo.cost_matrix[0, 3] == 3.0


class TestRing:
    def test_hop_metric_wraps(self):
        topo = ring_topology(6, capacity=1.0)
        assert topo.cost_matrix[0, 3] == 3.0  # halfway round
        assert topo.cost_matrix[0, 5] == 1.0  # wraps

    def test_single_partition_ring(self):
        topo = ring_topology(1, capacity=1.0)
        assert topo.num_partitions == 1
        assert topo.cost_matrix[0, 0] == 0.0


class TestStar:
    def test_hub_and_leaf_distances(self):
        topo = star_topology(4, hub_capacity=10.0, leaf_capacity=2.0)
        assert topo.num_partitions == 5
        assert topo.cost_matrix[0, 1] == 1.0  # hub-leaf
        assert topo.cost_matrix[1, 2] == 2.0  # leaf-leaf via hub

    def test_capacities(self):
        topo = star_topology(2, hub_capacity=10.0, leaf_capacity=3.0)
        assert np.array_equal(topo.capacities(), [10.0, 3.0, 3.0])

    def test_rejects_no_leaves(self):
        with pytest.raises(ValueError):
            star_topology(0, hub_capacity=1.0, leaf_capacity=1.0)


class TestQuadraticMetric:
    def test_squared_manhattan(self):
        import numpy as np
        from repro.topology.grid import grid_topology

        quad = grid_topology(2, 2, capacity=1.0, metric="quadratic")
        man = grid_topology(2, 2, capacity=1.0, metric="manhattan")
        assert np.array_equal(quad.cost_matrix, man.cost_matrix**2)

    def test_penalises_long_wires_superlinearly(self):
        from repro.topology.grid import grid_topology

        quad = grid_topology(1, 4, capacity=1.0, metric="quadratic")
        assert quad.cost_matrix[0, 3] == 9.0
        assert quad.cost_matrix[0, 1] == 1.0
