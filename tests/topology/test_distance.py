"""Tests for repro.topology.distance."""

import numpy as np
import pytest

from repro.topology.distance import (
    euclidean_distance_matrix,
    hop_distance_matrix,
    manhattan_distance_matrix,
    uniform_cost_matrix,
)


class TestManhattan:
    def test_paper_2x2_grid(self):
        # Positions of the paper example's partitions 1..4 on a 2x2 grid.
        pos = [(0, 0), (1, 0), (0, 1), (1, 1)]
        d = manhattan_distance_matrix(pos)
        expected = np.array(
            [
                [0, 1, 1, 2],
                [1, 0, 2, 1],
                [1, 2, 0, 1],
                [2, 1, 1, 0],
            ],
            dtype=float,
        )
        assert np.array_equal(d, expected)

    def test_symmetry_and_zero_diagonal(self):
        pos = [(0.5, 2.0), (3.0, 1.0), (2.0, 2.0)]
        d = manhattan_distance_matrix(pos)
        assert np.array_equal(d, d.T)
        assert np.array_equal(np.diag(d), np.zeros(3))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            manhattan_distance_matrix([(0, 0, 0)])


class TestEuclidean:
    def test_345_triangle(self):
        d = euclidean_distance_matrix([(0, 0), (3, 4)])
        assert d[0, 1] == pytest.approx(5.0)

    def test_at_most_manhattan(self):
        pos = [(0, 0), (2, 3), (5, 1), (4, 4)]
        e = euclidean_distance_matrix(pos)
        m = manhattan_distance_matrix(pos)
        assert (e <= m + 1e-12).all()


class TestUniform:
    def test_structure(self):
        u = uniform_cost_matrix(3, 2.5)
        assert np.array_equal(np.diag(u), np.zeros(3))
        assert u[0, 1] == 2.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uniform_cost_matrix(0)
        with pytest.raises(ValueError):
            uniform_cost_matrix(3, -1.0)


class TestHop:
    def test_path_graph(self):
        d = hop_distance_matrix(3, [(0, 1), (1, 2)])
        assert d[0, 2] == 2.0
        assert d[0, 1] == 1.0
        assert d[0, 0] == 0.0

    def test_disconnected_is_inf(self):
        d = hop_distance_matrix(3, [(0, 1)])
        assert np.isinf(d[0, 2])

    def test_self_loop_ignored(self):
        d = hop_distance_matrix(2, [(0, 0), (0, 1)])
        assert d[0, 0] == 0.0
        assert d[0, 1] == 1.0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(IndexError):
            hop_distance_matrix(2, [(0, 5)])

    def test_symmetric(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        d = hop_distance_matrix(4, edges)
        assert np.array_equal(d, d.T)
