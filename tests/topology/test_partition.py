"""Tests for repro.topology.partition."""

import numpy as np
import pytest

from repro.topology.partition import Partition, Topology, summarize


@pytest.fixture
def topo() -> Topology:
    parts = [
        Partition("p0", capacity=10.0, position=(0.0, 0.0)),
        Partition("p1", capacity=20.0, position=(1.0, 0.0)),
    ]
    cost = [[0.0, 1.0], [1.0, 0.0]]
    delay = [[0.0, 3.0], [3.0, 0.0]]
    return Topology(parts, cost, delay)


class TestPartition:
    def test_fields(self):
        p = Partition("slot", capacity=5.0, position=(1.0, 2.0))
        assert p.name == "slot"
        assert p.capacity == 5.0
        assert p.position == (1.0, 2.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            Partition("p", capacity=-1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Partition("", capacity=1.0)


class TestTopology:
    def test_counts_and_vectors(self, topo):
        assert topo.num_partitions == 2
        assert np.array_equal(topo.capacities(), [10.0, 20.0])
        assert topo.total_capacity() == 30.0

    def test_b_and_d_independent(self, topo):
        assert topo.cost_matrix[0, 1] == 1.0
        assert topo.delay_matrix[0, 1] == 3.0

    def test_delay_defaults_to_cost(self):
        t = Topology([Partition("p", 1.0)], [[0.0]])
        assert np.array_equal(t.delay_matrix, t.cost_matrix)

    def test_matrices_read_only(self, topo):
        with pytest.raises(ValueError):
            topo.cost_matrix[0, 1] = 9.0

    def test_index_of(self, topo):
        assert topo.index_of("p1") == 1
        assert topo.index_of(0) == 0
        with pytest.raises(KeyError):
            topo.index_of("nope")
        with pytest.raises(IndexError):
            topo.index_of(5)

    def test_positions(self, topo):
        pos = topo.positions()
        assert pos.shape == (2, 2)
        assert tuple(pos[1]) == (1.0, 0.0)

    def test_positions_none_when_missing(self):
        t = Topology([Partition("p", 1.0)], [[0.0]])
        assert t.positions() is None

    def test_duplicate_names_rejected(self):
        parts = [Partition("p", 1.0), Partition("p", 1.0)]
        with pytest.raises(ValueError, match="unique"):
            Topology(parts, np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology([], np.zeros((0, 0)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Topology([Partition("p", 1.0)], np.zeros((2, 2)))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Topology([Partition("p", 1.0)], [[-1.0]])

    def test_with_cost_matrix_keeps_delay(self, topo):
        zeroed = topo.with_cost_matrix(np.zeros((2, 2)))
        assert zeroed.cost_matrix.sum() == 0.0
        # Crucial for the paper's B = 0 bootstrap: D must be preserved.
        assert zeroed.delay_matrix[0, 1] == 3.0

    def test_summarize(self, topo):
        s = summarize(topo)
        assert s.num_partitions == 2
        assert s.total_capacity == 30.0
        assert s.max_delay == 3.0
