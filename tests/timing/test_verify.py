"""Tests for repro.timing.verify (post-partitioning cycle-time check)."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.timing.constraints import derive_budgets
from repro.timing.graph import TimingGraph
from repro.timing.verify import budgets_imply_cycle_time, verify_cycle_time

# 1x3 linear topology delays.
DELAY = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])


@pytest.fixture
def chain() -> TimingGraph:
    return TimingGraph(3, [1.0, 1.0, 1.0], [(0, 1), (1, 2)])


class TestVerifyCycleTime:
    def test_colocated_meets_clock(self, chain):
        verdict = verify_cycle_time(chain, Assignment([0, 0, 0], 3), DELAY, 3.0)
        assert verdict.meets_cycle_time
        assert verdict.achieved_delay == pytest.approx(3.0)  # intrinsic only
        assert verdict.worst_slack == pytest.approx(0.0)

    def test_spread_out_adds_routing(self, chain):
        verdict = verify_cycle_time(chain, Assignment([0, 1, 2], 3), DELAY, 10.0)
        # 3 intrinsic + routing 1 + 1.
        assert verdict.achieved_delay == pytest.approx(5.0)
        assert verdict.meets_cycle_time

    def test_clock_violation_detected(self, chain):
        verdict = verify_cycle_time(chain, Assignment([0, 2, 0], 3), DELAY, 5.0)
        # Routing 2 + 2 => achieved 7 > 5.
        assert verdict.achieved_delay == pytest.approx(7.0)
        assert not verdict.meets_cycle_time
        assert verdict.worst_slack == pytest.approx(-2.0)

    def test_critical_edges_listed(self, chain):
        verdict = verify_cycle_time(chain, Assignment([0, 2, 0], 3), DELAY, 5.0)
        assert set(verdict.critical_edges) == {(0, 1), (1, 2)}

    def test_off_critical_edge_excluded(self):
        graph = TimingGraph(4, [1.0, 5.0, 1.0, 1.0], [(0, 1), (0, 2), (1, 3), (2, 3)])
        verdict = verify_cycle_time(graph, Assignment([0, 0, 0, 0], 4), np.zeros((4, 4)), 8.0)
        # Critical path runs through node 1; 0->2 and 2->3 are slack-rich.
        assert (0, 2) not in verdict.critical_edges

    def test_shape_validated(self, chain):
        with pytest.raises(ValueError, match="cover 3 nodes"):
            verify_cycle_time(chain, Assignment([0, 1], 2), DELAY, 5.0)

    def test_slack_ratio(self, chain):
        verdict = verify_cycle_time(chain, Assignment([0, 0, 0], 3), DELAY, 6.0)
        assert verdict.slack_ratio == pytest.approx(3.0 / 6.0)


class TestBudgetDecomposition:
    """The soundness property: budgets met => cycle time met."""

    def test_implication_holds_on_random_assignments(self, chain):
        cycle_time = 7.0
        budgets = derive_budgets(chain, cycle_time)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a = Assignment(rng.integers(0, 3, size=3), 3)
            if budgets_imply_cycle_time(chain, a, DELAY, budgets):
                verdict = verify_cycle_time(chain, a, DELAY, cycle_time)
                assert verdict.meets_cycle_time, a.part

    def test_premise_fails_when_edge_over_budget(self, chain):
        budgets = derive_budgets(chain, 3.5)  # slack 0.5 -> budgets 0.25
        assert not budgets_imply_cycle_time(
            chain, Assignment([0, 2, 0], 3), DELAY, budgets
        )
