"""Tests for repro.timing.constraints."""

import numpy as np
import pytest

from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.timing.constraints import (
    TimingConstraints,
    derive_budgets,
    synthesize_feasible_constraints,
)
from repro.timing.graph import TimingGraph
from repro.topology.grid import grid_topology


class TestTimingConstraints:
    def test_add_and_lookup(self):
        tc = TimingConstraints(4)
        tc.add(0, 1, 2.5)
        assert tc.budget(0, 1) == 2.5
        assert tc.budget(1, 0) == np.inf
        assert tc.budget(2, 2) == 0.0
        assert len(tc) == 1

    def test_symmetric_add(self):
        tc = TimingConstraints(3)
        tc.add(0, 1, 1.0, symmetric=True)
        assert tc.budget(1, 0) == 1.0
        assert len(tc) == 2
        assert tc.num_pairs == 1

    def test_tighter_budget_wins(self):
        tc = TimingConstraints(3)
        tc.add(0, 1, 5.0)
        tc.add(0, 1, 2.0)
        tc.add(0, 1, 9.0)
        assert tc.budget(0, 1) == 2.0

    def test_infinite_budget_is_noop(self):
        tc = TimingConstraints(3)
        tc.add(0, 1, np.inf)
        assert len(tc) == 0

    def test_rejects_self_pair(self):
        tc = TimingConstraints(3)
        with pytest.raises(ValueError):
            tc.add(1, 1, 1.0)

    def test_rejects_out_of_range(self):
        tc = TimingConstraints(3)
        with pytest.raises(IndexError):
            tc.add(0, 3, 1.0)

    def test_rejects_negative_budget(self):
        tc = TimingConstraints(3)
        with pytest.raises(ValueError):
            tc.add(0, 1, -1.0)

    def test_matrix_roundtrip(self):
        tc = TimingConstraints(3)
        tc.add(0, 1, 1.0)
        tc.add(2, 0, 3.0)
        mat = tc.to_matrix()
        assert mat[0, 1] == 1.0
        assert mat[2, 0] == 3.0
        assert mat[1, 2] == np.inf
        assert np.array_equal(np.diag(mat), np.zeros(3))
        restored = TimingConstraints.from_matrix(mat)
        assert list(restored.items()) == list(tc.items())

    def test_violations_and_satisfaction(self):
        tc = TimingConstraints(2)
        tc.add(0, 1, 1.0)
        delay = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert not tc.is_satisfied([0, 1], delay)
        violations = tc.violations([0, 1], delay)
        assert violations == [(0, 1, 2.0, 1.0)]
        assert tc.is_satisfied([0, 0], delay)

    def test_arrays_view(self):
        tc = TimingConstraints(3)
        tc.add(1, 2, 4.0)
        tc.add(0, 1, 2.0)
        src, dst, budget = tc.arrays()
        assert src.tolist() == [0, 1]
        assert dst.tolist() == [1, 2]
        assert budget.tolist() == [2.0, 4.0]

    def test_empty_arrays(self):
        src, dst, budget = TimingConstraints(3).arrays()
        assert src.size == dst.size == budget.size == 0


class TestDeriveBudgets:
    def test_chain_budgets_split_slack(self):
        graph = TimingGraph(3, [1.0, 1.0, 1.0], [(0, 1), (1, 2)])
        tc = derive_budgets(graph, cycle_time=9.0)
        # Slack 6 over a 2-edge path -> 3 per edge.
        assert tc.budget(0, 1) == pytest.approx(3.0)
        assert tc.budget(1, 2) == pytest.approx(3.0)

    def test_symmetric_by_default(self):
        graph = TimingGraph(2, [1.0, 1.0], [(0, 1)])
        tc = derive_budgets(graph, cycle_time=5.0)
        assert tc.budget(1, 0) == tc.budget(0, 1)

    def test_asymmetric_option(self):
        graph = TimingGraph(2, [1.0, 1.0], [(0, 1)])
        tc = derive_budgets(graph, cycle_time=5.0, symmetric=False)
        assert np.isinf(tc.budget(1, 0))

    def test_min_budget_floor(self):
        graph = TimingGraph(2, [1.0, 1.0], [(0, 1)])
        tc = derive_budgets(graph, cycle_time=2.0, min_budget=1.5)
        assert tc.budget(0, 1) == 1.5

    def test_infeasible_cycle_time_rejected(self):
        graph = TimingGraph(2, [5.0, 5.0], [(0, 1)])
        with pytest.raises(ValueError, match="infeasible"):
            derive_budgets(graph, cycle_time=3.0)

    def test_off_critical_edges_get_more_budget(self):
        graph = TimingGraph(4, [1.0, 5.0, 1.0, 1.0], [(0, 1), (0, 2), (1, 3), (2, 3)])
        tc = derive_budgets(graph, cycle_time=10.0)
        assert tc.budget(0, 2) > tc.budget(0, 1)


class TestSynthesize:
    @pytest.fixture
    def setting(self):
        spec = ClusteredCircuitSpec("s", num_components=30, num_wires=120)
        circuit = generate_clustered_circuit(spec, seed=3)
        topo = grid_topology(2, 2, capacity=circuit.total_size())
        reference = np.arange(30) % 4
        return circuit, topo, reference

    def test_exact_pair_count(self, setting):
        circuit, topo, ref = setting
        tc = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref, count=25, seed=1
        )
        assert tc.num_pairs == 25
        assert len(tc) == 50  # both directions stored

    def test_reference_always_feasible(self, setting):
        circuit, topo, ref = setting
        for seed in range(5):
            tc = synthesize_feasible_constraints(
                circuit, topo.delay_matrix, ref, count=40, tightness=1.0,
                max_margin=0, min_budget=0.0, seed=seed,
            )
            assert tc.is_satisfied(ref, topo.delay_matrix)

    def test_count_beyond_connected_pairs_uses_random_pairs(self, setting):
        circuit, topo, ref = setting
        want = circuit.num_connected_pairs + 50
        tc = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref, count=want, seed=2
        )
        assert tc.num_pairs == want

    def test_count_too_large_rejected(self, setting):
        circuit, topo, ref = setting
        with pytest.raises(ValueError, match="exceeds"):
            synthesize_feasible_constraints(
                circuit, topo.delay_matrix, ref, count=30 * 29 // 2 + 1, seed=0
            )

    def test_min_budget_respected(self, setting):
        circuit, topo, ref = setting
        tc = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref, count=20, min_budget=2.0,
            tightness=1.0, seed=4,
        )
        budgets = [b for _, _, b in tc.items()]
        assert min(budgets) >= 2.0

    def test_deterministic(self, setting):
        circuit, topo, ref = setting
        a = synthesize_feasible_constraints(circuit, topo.delay_matrix, ref, count=30, seed=9)
        b = synthesize_feasible_constraints(circuit, topo.delay_matrix, ref, count=30, seed=9)
        assert list(a.items()) == list(b.items())

    def test_validates_args(self, setting):
        circuit, topo, ref = setting
        with pytest.raises(ValueError):
            synthesize_feasible_constraints(
                circuit, topo.delay_matrix, ref, count=5, tightness=2.0
            )
        with pytest.raises(ValueError):
            synthesize_feasible_constraints(
                circuit, topo.delay_matrix, ref, count=5, max_margin=-1
            )
        with pytest.raises(ValueError):
            synthesize_feasible_constraints(
                circuit, topo.delay_matrix, np.zeros(5), count=5
            )
