"""Tests for repro.timing.graph (STA substrate)."""

import numpy as np
import pytest

from repro.netlist.circuit import Circuit
from repro.timing.graph import TimingGraph, acyclic_orientation


@pytest.fixture
def chain() -> TimingGraph:
    """A 4-node chain with unit intrinsic delays."""
    return TimingGraph(4, [1.0, 1.0, 1.0, 1.0], [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def diamond() -> TimingGraph:
    """0 -> {1 slow, 2 fast} -> 3."""
    return TimingGraph(4, [1.0, 5.0, 1.0, 1.0], [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_rejects_bad_delays(self):
        with pytest.raises(ValueError):
            TimingGraph(2, [1.0], [])
        with pytest.raises(ValueError):
            TimingGraph(2, [1.0, -1.0], [])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            TimingGraph(2, [0.0, 0.0], [(0, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(IndexError):
            TimingGraph(2, [0.0, 0.0], [(0, 5)])

    def test_duplicate_edges_collapsed(self):
        g = TimingGraph(2, [0.0, 0.0], [(0, 1), (0, 1)])
        assert g.edges == ((0, 1),)

    def test_io_detection(self, diamond):
        assert diamond.primary_inputs() == [0]
        assert diamond.primary_outputs() == [3]

    def test_cycle_detected(self):
        g = TimingGraph(2, [0.0, 0.0], [(0, 1), (1, 0)])
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_topological_order_valid(self, diamond):
        order = diamond.topological_order()
        pos = {node: k for k, node in enumerate(order)}
        for a, b in diamond.edges:
            assert pos[a] < pos[b]


class TestAnalysis:
    def test_chain_arrivals(self, chain):
        report = chain.analyze(cycle_time=10.0)
        assert np.array_equal(report.arrival, [1.0, 2.0, 3.0, 4.0])
        assert report.critical_path_delay == 4.0

    def test_chain_requireds_and_slack(self, chain):
        report = chain.analyze(cycle_time=10.0)
        assert np.array_equal(report.required, [7.0, 8.0, 9.0, 10.0])
        assert np.all(report.slack == 6.0)
        assert report.worst_slack == 6.0

    def test_diamond_critical_path(self, diamond):
        report = diamond.analyze(cycle_time=10.0)
        # Critical path 0 -> 1 -> 3: 1 + 5 + 1 = 7.
        assert report.critical_path_delay == 7.0
        # Node 2 is off-critical: slack larger than node 1's.
        assert report.slack[2] > report.slack[1]

    def test_negative_slack_when_cycle_too_short(self, diamond):
        report = diamond.analyze(cycle_time=5.0)
        assert report.worst_slack < 0

    def test_edge_delays_constant(self, chain):
        fast = chain.analyze(cycle_time=20.0)
        slow = chain.analyze(cycle_time=20.0, edge_delays=2.0)
        assert slow.critical_path_delay == fast.critical_path_delay + 3 * 2.0

    def test_edge_delays_mapping(self, chain):
        report = chain.analyze(cycle_time=20.0, edge_delays={(0, 1): 5.0})
        assert report.arrival[1] == 1.0 + 5.0 + 1.0

    def test_rejects_negative_cycle_time(self, chain):
        with pytest.raises(ValueError):
            chain.analyze(-1.0)

    def test_rejects_negative_edge_delay(self, chain):
        with pytest.raises(ValueError):
            chain.analyze(10.0, edge_delays=-1.0)


class TestEdgeSlacks:
    def test_chain_edge_slacks_uniform(self, chain):
        report = chain.analyze(cycle_time=10.0)
        slacks = chain.edge_slacks(report)
        assert set(slacks.values()) == {6.0}

    def test_diamond_off_critical_edge_has_more_slack(self, diamond):
        report = diamond.analyze(cycle_time=10.0)
        slacks = diamond.edge_slacks(report)
        assert slacks[(0, 2)] > slacks[(0, 1)]
        assert slacks[(2, 3)] > slacks[(1, 3)]

    def test_zero_cycle_slack_consistency(self, diamond):
        # At cycle time == critical path, critical edges have zero slack.
        report = diamond.analyze(cycle_time=7.0)
        slacks = diamond.edge_slacks(report)
        assert slacks[(0, 1)] == pytest.approx(0.0)
        assert slacks[(1, 3)] == pytest.approx(0.0)


class TestFromCircuit:
    def test_orientation_is_acyclic(self):
        ckt = Circuit()
        for name in "abcd":
            ckt.add_component(name, intrinsic_delay=1.0)
        ckt.add_undirected_wire("a", "b")
        ckt.add_undirected_wire("b", "c")
        ckt.add_undirected_wire("c", "d")
        ckt.add_undirected_wire("d", "a")  # cycle in the undirected sense
        edges = acyclic_orientation(ckt)
        assert edges == [(0, 1), (0, 3), (1, 2), (2, 3)]
        graph = TimingGraph.from_circuit(ckt)
        graph.topological_order()  # must not raise

    def test_intrinsic_delays_carried(self):
        ckt = Circuit()
        ckt.add_component("a", intrinsic_delay=2.5)
        ckt.add_component("b", intrinsic_delay=0.5)
        ckt.add_wire("a", "b")
        graph = TimingGraph.from_circuit(ckt)
        assert np.array_equal(graph.intrinsic, [2.5, 0.5])
