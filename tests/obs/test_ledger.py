"""The run ledger (repro.obs.ledger)."""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LEDGER_FORMAT,
    append_record,
    config_digest,
    make_record,
    metric_series,
    peak_rss_kb,
    read_ledger,
    run_manifest,
    window_baseline,
)
from repro.obs.metrics import empty_snapshot


def _snapshot(counters=None, gauges=None):
    snapshot = empty_snapshot()
    snapshot["counters"] = dict(counters or {})
    snapshot["gauges"] = dict(gauges or {})
    return snapshot


def _record(counters=None, gauges=None, **kwargs):
    return make_record(
        manifest=run_manifest(label="test", seed=0, workers=1, config={"x": 1}),
        metrics=_snapshot(counters, gauges),
        **kwargs,
    )


class TestConfigDigest:
    def test_stable_and_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert len(config_digest({"a": 1})) == 16

    def test_non_json_values_stringified(self):
        config_digest({"path": object()})  # must not raise

    def test_none_equals_empty(self):
        assert config_digest(None) == config_digest({})


class TestManifestAndRecord:
    def test_manifest_fields(self):
        manifest = run_manifest(label="eval.run", seed=7, workers=4, config={})
        assert manifest["label"] == "eval.run"
        assert manifest["seed"] == 7
        assert manifest["workers"] == 4
        assert "platform" in manifest and "python" in manifest

    def test_record_shape(self):
        record = _record(
            counters={"c": 1.0}, elapsed_seconds=1.5, profile_samples=42
        )
        assert record["format"] == LEDGER_FORMAT
        assert record["ts"] > 0
        assert record["elapsed_seconds"] == 1.5
        assert record["profile_samples"] == 42
        assert record["metrics"]["counters"] == {"c": 1.0}

    def test_rejects_foreign_metrics_format(self):
        with pytest.raises(ValueError):
            make_record(
                manifest=run_manifest(label="x"), metrics={"format": "nope"}
            )

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "ledger.jsonl"
        append_record(path, _record(counters={"c": 1.0}))
        append_record(path, _record(counters={"c": 2.0}))
        records = read_ledger(path)
        assert [r["metrics"]["counters"]["c"] for r in records] == [1.0, 2.0]

    def test_append_rejects_untagged_record(self, tmp_path):
        with pytest.raises(ValueError):
            append_record(tmp_path / "l.jsonl", {"format": "other"})

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_torn_line_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_record(path, _record(counters={"c": 1.0}))
        with open(path, "a") as fh:
            fh.write('{"format": "run-ledger-v1", "truncat')
        assert len(read_ledger(path)) == 1

    def test_foreign_format_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps({"format": "other-v1"}) + "\n")
        append_record(path, _record())
        assert len(read_ledger(path)) == 1


class TestWindowBaseline:
    def test_empty_ledger_gives_none(self):
        assert window_baseline([]) is None

    def test_counters_from_latest_times_from_median(self):
        records = [
            _record(counters={"c": 10.0}, gauges={"t_seconds": v, "last.cost": 9.0})
            for v in (1.0, 5.0, 2.0)
        ]
        baseline = window_baseline(records, window=3)
        assert baseline["counters"] == {"c": 10.0}
        assert baseline["gauges"] == {"t_seconds": 2.0}  # median, no last.cost

    def test_window_limits_history(self):
        records = [
            _record(gauges={"t_seconds": v}) for v in (100.0, 1.0, 1.0, 1.0)
        ]
        baseline = window_baseline(records, window=3)
        assert baseline["gauges"]["t_seconds"] == 1.0


class TestMetricSeries:
    def test_counters_gauges_and_gaps(self):
        records = [
            _record(counters={"c": 1.0}),
            _record(gauges={"c": 3.0}),
            _record(),
        ]
        assert metric_series(records, "c") == [1.0, 3.0, None]
