"""Tests for repro.obs.events (schema, validation, sinks)."""

import json

import pytest

from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_SCHEMA_VERSION,
    CheckpointEvent,
    EventLog,
    FallbackEvent,
    IterationEvent,
    JsonlEventSink,
    RestartEvent,
    event_to_dict,
    validate_trace_line,
)


class TestEventSerialisation:
    def test_iteration_event_round_trip(self):
        event = IterationEvent(solver="qbp", iteration=3, cost=10.0, best_cost=9.0)
        payload = event_to_dict(event)
        assert payload["type"] == "event"
        assert payload["event"] == "iteration"
        assert payload["schema"] == EVENT_SCHEMA_VERSION
        assert payload["best_feasible_cost"] is None
        assert validate_trace_line(payload) is payload

    def test_every_kind_validates(self):
        events = [
            IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0),
            RestartEvent(solver="qbp", index=0, restarts=3, best_cost=1.0),
            FallbackEvent(ladder="gap", rung="gap.trust", try_index=0,
                          status="error", elapsed_seconds=0.1, error="boom"),
            CheckpointEvent(label="ckt", iteration=10, path="x.json", bytes=512),
        ]
        for event in events:
            validate_trace_line(event_to_dict(event))

    def test_schema_lists_all_fields(self):
        assert set(EVENT_SCHEMA) == {
            "iteration",
            "restart",
            "fallback",
            "checkpoint",
            "retry",
            "quarantine",
            "integrity",
            "progress",
            "service",
        }
        assert "best_feasible_cost" in EVENT_SCHEMA["iteration"]
        assert "payload_digest" in EVENT_SCHEMA["quarantine"]
        assert "delay_seconds" in EVENT_SCHEMA["retry"]
        assert "reason" in EVENT_SCHEMA["integrity"]
        assert "digest" in EVENT_SCHEMA["service"]
        assert "status" in EVENT_SCHEMA["service"]


class TestValidateTraceLine:
    def test_accepts_raw_json_string(self):
        payload = event_to_dict(
            IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0)
        )
        record = validate_trace_line(json.dumps(payload))
        assert record["solver"] == "qbp"

    def test_rejects_invalid_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_trace_line("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_trace_line('"just a string"')

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            validate_trace_line({"type": "mystery"})

    def test_rejects_unknown_event_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_trace_line({"type": "event", "event": "nope", "schema": 1})

    def test_rejects_missing_required_field(self):
        payload = event_to_dict(
            IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0)
        )
        del payload["cost"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_trace_line(payload)

    def test_rejects_newer_schema(self):
        payload = event_to_dict(
            IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0)
        )
        payload["schema"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            validate_trace_line(payload)

    def test_tolerates_extra_event_fields(self):
        payload = event_to_dict(
            IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0)
        )
        payload["future_field"] = "ok"
        validate_trace_line(payload)

    def test_rejects_span_missing_timing(self):
        with pytest.raises(ValueError, match="missing 'wall'"):
            validate_trace_line(
                {"type": "span", "name": "x", "id": 1, "start": 0.0, "cpu": 0.0}
            )

    def test_rejects_negative_span_timing(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_trace_line(
                {"type": "span", "name": "x", "id": 1,
                 "start": 0.0, "wall": -1.0, "cpu": 0.0}
            )


class TestSinks:
    def test_event_log_filters_by_kind(self):
        log = EventLog()
        log.emit(IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0))
        log.emit(CheckpointEvent(label="c", iteration=1, path="p", bytes=1))
        assert len(log) == 2
        assert [e.kind for e in log] == ["iteration", "checkpoint"]
        assert len(log.of_kind("iteration")) == 1

    def test_jsonl_sink_streams_valid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit(
                IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0)
            )
            # Eager flush: the line is on disk before close.
            assert path.read_text().count("\n") == 1
        assert sink.count == 1
        for line in path.read_text().splitlines():
            validate_trace_line(line)
