"""The sampling profiler and memory accounting (repro.obs.prof)."""

from __future__ import annotations

import os
import sys
import time
import tracemalloc

import pytest

from repro.obs.prof import (
    PROFILE_ENV,
    PROFILE_FORMAT,
    PROFILE_MEM_ENV,
    MemorySpan,
    MemoryTracker,
    Profiler,
    StackSampler,
    clear_profile_env,
    frame_label,
    profiler_from_env,
    set_profile_env,
)
from repro.obs.trace import Tracer


def _burn(deadline: float) -> float:
    total = 0.0
    while time.perf_counter() < deadline:
        total += sum(float(i) for i in range(200))
    return total


class TestStackSampler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            StackSampler(0.0)

    def test_samples_the_calling_thread(self):
        sampler = StackSampler(0.001)
        sampler.start()
        assert sampler.active
        _burn(time.perf_counter() + 0.08)
        sampler.stop()
        assert not sampler.active
        assert sampler.total_samples > 0
        # This module's burn loop must appear as a leaf frame.
        leaves = {stack[-1] for stack in sampler.counts}
        assert any("_burn" in leaf for leaf in leaves)
        # Stacks are root -> leaf and labelled module:qualname.
        for stack in sampler.counts:
            assert all(":" in label for label in stack)

    def test_start_is_idempotent(self):
        sampler = StackSampler(0.001)
        sampler.start()
        thread = sampler._thread
        sampler.start()
        assert sampler._thread is thread
        sampler.stop()

    def test_stop_without_start_is_noop(self):
        StackSampler().stop()

    def test_counts_total_matches(self):
        sampler = StackSampler(0.001)
        sampler.start()
        _burn(time.perf_counter() + 0.05)
        sampler.stop()
        assert sum(sampler.counts.values()) == sampler.total_samples


class TestFrameLabel:
    def test_module_and_qualname(self):
        frame = sys._getframe()
        label = frame_label(frame)
        assert label.startswith("tests.obs.test_prof:")
        assert "test_module_and_qualname" in label


class TestMemoryTracker:
    def test_nested_peaks_attributed_innermost(self):
        tracker = MemoryTracker()
        tracker.start()
        try:
            assert tracker.tracking
            tracker.enter()
            tracker.enter()
            blob = bytearray(512 * 1024)
            inner = tracker.exit()
            del blob
            outer = tracker.exit()
        finally:
            tracker.stop()
        assert inner >= 512 * 1024
        # The child's peak folds into the parent.
        assert outer >= inner

    def test_stop_releases_tracemalloc_only_if_started(self):
        already = tracemalloc.is_tracing()
        tracker = MemoryTracker()
        tracker.start()
        tracker.stop()
        assert tracemalloc.is_tracing() == already

    def test_not_tracking_before_start(self):
        assert not MemoryTracker().tracking


class TestMemorySpan:
    def test_stamps_mem_peak_attribute(self):
        tracer = Tracer()
        tracker = MemoryTracker()
        tracker.start()
        try:
            with MemorySpan(tracer.span("work"), tracker):
                blob = bytearray(256 * 1024)
                del blob
        finally:
            tracker.stop()
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.attrs["mem_peak_kb"] >= 256

    def test_forwards_set_and_skips_untracked_thread(self):
        tracer = Tracer()
        tracker = MemoryTracker()  # never started: tracking is False
        with MemorySpan(tracer.span("w"), tracker) as span:
            span.set("k", 1)
        (record,) = tracer.spans
        assert record.attrs == {"k": 1}
        assert "mem_peak_kb" not in record.attrs


class TestProfiler:
    def test_collapsed_output_and_totals(self):
        prof = Profiler(interval=0.001)
        prof.start()
        _burn(time.perf_counter() + 0.08)
        prof.stop()
        assert prof.total_samples > 0
        lines = prof.collapsed_lines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) > 0
        assert sum(prof.collapsed_counts().values()) == prof.total_samples

    def test_write_collapsed(self, tmp_path):
        prof = Profiler(interval=0.001)
        prof.sampler.counts[("a:f", "b:g")] = 3
        prof.sampler.total_samples = 3
        out = tmp_path / "prof" / "collapsed.txt"
        assert prof.write_collapsed(out) == 1
        assert out.read_text() == "a:f;b:g 3\n"

    def test_summary_lines_rank_leaves(self):
        prof = Profiler()
        prof.sampler.counts[("a:f", "b:g")] = 3
        prof.sampler.counts[("a:f", "c:h")] = 1
        prof.sampler.total_samples = 4
        lines = prof.summary_lines()
        assert "4 samples" in lines[0]
        assert "b:g" in lines[1]  # hottest leaf first

    def test_summary_with_no_samples(self):
        assert "no samples" in Profiler().summary_lines()[0]

    def test_to_dict_merge_dump_roundtrip(self):
        a = Profiler()
        a.sampler.counts[("m:f", "m:g")] = 2
        a.sampler.total_samples = 2
        b = Profiler()
        b.sampler.counts[("m:f", "m:g")] = 1
        b.sampler.counts[("m:f", "m:h")] = 4
        b.sampler.total_samples = 5
        dump = b.to_dict()
        assert dump["format"] == PROFILE_FORMAT
        a.merge_dump(dump)
        assert a.total_samples == 7
        assert a.sampler.counts[("m:f", "m:g")] == 3
        assert a.sampler.counts[("m:f", "m:h")] == 4


class TestEnvPropagation:
    def teardown_method(self):
        clear_profile_env()

    def test_roundtrip(self):
        set_profile_env(0.002, memory=True)
        assert os.environ[PROFILE_ENV] == "0.002"
        assert os.environ[PROFILE_MEM_ENV] == "1"
        prof = profiler_from_env()
        assert prof is not None
        assert prof.interval == 0.002
        assert prof.memory is not None

    def test_memory_flag_off(self):
        set_profile_env(0.01, memory=False)
        prof = profiler_from_env()
        assert prof.memory is None
        assert PROFILE_MEM_ENV not in os.environ

    def test_absent_means_off(self):
        clear_profile_env()
        assert profiler_from_env() is None

    def test_invalid_values_mean_off(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "banana")
        assert profiler_from_env() is None
        monkeypatch.setenv(PROFILE_ENV, "-1")
        assert profiler_from_env() is None
