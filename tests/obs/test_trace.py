"""Tests for repro.obs.trace (spans, nesting, exports)."""

import json
import threading

import pytest

from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer
from repro.obs.events import validate_trace_line


class TestSpans:
    def test_records_wall_and_cpu(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.wall >= 0.0
        assert record.cpu >= 0.0
        assert record.parent_id is None

    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # closed innermost-first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.spans}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("gap.solve", criterion="cost") as span:
            span.set("items", 12)
        (record,) = tracer.spans
        assert record.attrs == {"criterion": "cost", "items": 12}

    def test_exception_marks_error_and_still_records(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.spans
        assert record.attrs["error"] == "RuntimeError"

    def test_child_wall_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.wall <= outer.wall
        assert inner.start >= outer.start

    def test_thread_local_stacks_do_not_cross(self):
        tracer = Tracer()

        def worker():
            with tracer.span("thread-root"):
                pass

        with tracer.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {r.name: r for r in tracer.spans}
        # The thread's span must not claim the main thread's span as parent.
        assert by_name["thread-root"].parent_id is None
        assert by_name["main-root"].parent_id is None


class TestNullSpan:
    def test_noop_protocol(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.set("k", 1) is NULL_SPAN


class TestExports:
    def test_jsonl_lines_validate(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        lines = tracer.to_jsonl_lines()
        assert len(lines) == 2
        for line in lines:
            record = validate_trace_line(line)
            assert record["type"] == "span"
            assert record["schema"] == 1

    def test_jsonl_lines_start_ordered(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        names = [json.loads(line)["name"] for line in tracer.to_jsonl_lines()]
        assert names == ["first", "second"]

    def test_export_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2  # meta header + one span
        meta_line, line = path.read_text().splitlines()
        meta = json.loads(meta_line)
        assert meta["type"] == "meta"
        assert meta["epoch_unix"] == tracer.epoch_unix
        assert json.loads(line)["name"] == "a"

    def test_chrome_trace_complete_events(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = tracer.to_chrome_trace()
        assert [e["ph"] for e in events] == ["X", "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        assert all("cpu_seconds" in e["args"] for e in events)
        path = tmp_path / "chrome.json"
        assert tracer.export_chrome(path) == 2
        payload = json.loads(path.read_text())
        assert [e["name"] for e in payload["traceEvents"]] == ["outer", "inner"]
        assert payload["metadata"]["epoch_unix"] == tracer.epoch_unix
        assert payload["metadata"]["clock"] == "perf_counter"

    def test_span_record_end(self):
        record = SpanRecord(name="x", span_id=1, parent_id=None,
                            start=1.0, wall=2.0, cpu=0.5)
        assert record.end == 3.0
