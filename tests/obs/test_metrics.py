"""Tests for repro.obs.metrics (instruments, snapshots, diffs)."""

import json

import pytest

from repro.obs.metrics import (
    METRICS_SNAPSHOT_FORMAT,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    empty_snapshot,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.summary() == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }
        assert h.last == 2.0

    def test_histogram_empty_summary(self):
        assert Histogram().summary()["count"] == 0

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(9.0)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0


class TestRegistry:
    def test_create_on_first_use_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("solver.iterations").inc(3)
        registry.gauge("harness.qbp_seconds").set(1.5)
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert snap["format"] == METRICS_SNAPSHOT_FORMAT
        assert snap["counters"] == {"solver.iterations": 3.0}
        assert snap["gauges"] == {"harness.qbp_seconds": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serialisable(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.json"
        registry.export_json(path)
        assert json.loads(path.read_text())["counters"] == {"c": 1.0}

    def test_empty_snapshot_matches_fresh_registry(self):
        assert MetricsRegistry().snapshot() == empty_snapshot()


class TestDiffSnapshots:
    def test_counter_deltas(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.counter("d").inc(1)
        diff = diff_snapshots(before, registry.snapshot())
        assert diff["counters"] == {"c": 3.0, "d": 1.0}

    def test_unchanged_entries_dropped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        before = registry.snapshot()
        diff = diff_snapshots(before, registry.snapshot())
        assert diff["counters"] == {}
        assert diff["gauges"] == {}
        assert diff["histograms"] == {}

    def test_changed_gauge_reported(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        before = registry.snapshot()
        registry.gauge("g").set(2.0)
        diff = diff_snapshots(before, registry.snapshot())
        assert diff["gauges"] == {"g": 2.0}
