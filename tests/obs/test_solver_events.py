"""End-to-end telemetry tests: solvers, baselines, supervisor, harness.

These pin the *deterministic* parts of the event stream: ordering,
counts, and the agreement between events and the metrics registry.
"""

import logging

import pytest

from repro.baselines.gfm import gfm_partition
from repro.eval.harness import SolverTimings, build_workload, run_circuit_experiment
from repro.obs.telemetry import DISABLED, Telemetry, current
from repro.runtime.checkpoint import QbpCheckpointer
from repro.runtime.faults import FaultPlan, inject_faults
from repro.solvers.burkard import (
    bootstrap_initial_solution,
    solve_qbp,
    solve_qbp_multistart,
)
from repro.solvers.gap import GapInfeasibleError
from repro.solvers.greedy import greedy_feasible_assignment


@pytest.fixture
def tel():
    return Telemetry.enabled_default()


class TestSolveQbpEvents:
    def test_iteration_events_are_sequential(self, small_problem, tel):
        result = solve_qbp(small_problem, iterations=6, seed=0, telemetry=tel)
        iterations = tel.events() and [
            e for e in tel.events() if e.kind == "iteration"
        ]
        assert [e.iteration for e in iterations] == list(
            range(1, len(iterations) + 1)
        )
        assert all(e.solver == "qbp" for e in iterations)
        # Every event carries the running best; the final best matches.
        assert iterations[-1].best_cost == pytest.approx(result.penalized_cost)

    def test_iteration_counter_matches_events(self, small_problem, tel):
        solve_qbp(small_problem, iterations=6, seed=0, telemetry=tel)
        iterations = [e for e in tel.events() if e.kind == "iteration"]
        snap = tel.metrics_snapshot()
        assert snap["counters"]["solver.iterations"] == float(len(iterations))

    def test_solve_span_records_stop_reason(self, small_problem, tel):
        solve_qbp(small_problem, iterations=4, seed=0, telemetry=tel)
        spans = {s.name: s for s in tel.tracer.spans}
        assert "qbp.solve" in spans
        assert spans["qbp.solve"].attrs["stop_reason"] in {
            "completed", "stalled", "deadline", "cancelled",
        }

    def test_run_is_deterministic(self, small_problem):
        streams = []
        for _ in range(2):
            tel = Telemetry.enabled_default()
            solve_qbp(small_problem, iterations=6, seed=3, telemetry=tel)
            streams.append(
                [(e.kind, getattr(e, "iteration", None), getattr(e, "cost", None))
                 for e in tel.events()]
            )
        assert streams[0] == streams[1]


class TestMultistartEvents:
    def test_one_restart_event_per_start(self, small_problem, tel):
        restarts = 3
        solve_qbp_multistart(
            small_problem, restarts=restarts, iterations=4, seed=0, telemetry=tel
        )
        restart_events = [e for e in tel.events() if e.kind == "restart"]
        assert [e.index for e in restart_events] == list(range(restarts))
        assert all(e.restarts == restarts for e in restart_events)
        assert tel.metrics_snapshot()["counters"]["solver.restarts"] == float(restarts)

    def test_best_cost_is_monotone_across_restarts(self, small_problem, tel):
        solve_qbp_multistart(
            small_problem, restarts=4, iterations=4, seed=0, telemetry=tel
        )
        bests = [e.best_cost for e in tel.events() if e.kind == "restart"]
        assert bests == sorted(bests, reverse=True)

    def test_raising_callback_warns_exactly_once(self, small_problem, caplog):
        def bad_callback(iteration, assignment, cost):
            raise RuntimeError("telemetry test callback")

        with caplog.at_level(logging.WARNING, logger="repro.solvers.burkard"):
            solve_qbp_multistart(
                small_problem, restarts=3, iterations=4, seed=0,
                callback=bad_callback,
            )
        warnings = [r for r in caplog.records if "callback raised" in r.message]
        assert len(warnings) == 1


class TestBaselineEvents:
    def test_gfm_emits_one_event_per_pass(self, medium_problem, tel):
        start = greedy_feasible_assignment(medium_problem, seed=3)
        result = gfm_partition(medium_problem, start, telemetry=tel)
        passes = [e for e in tel.events() if e.kind == "iteration"]
        assert all(e.solver == "gfm" for e in passes)
        assert [e.iteration for e in passes] == list(range(1, len(passes) + 1))
        spans = {s.name: s for s in tel.tracer.spans}
        assert spans["gfm.solve"].attrs["passes"] == len(passes)
        assert tel.metrics_snapshot()["counters"]["solver.passes"] == float(
            len(passes)
        )
        assert result.assignment is not None


class TestSupervisorLadder:
    def test_degrading_gap_ladder_emits_fallbacks(self, small_problem, tel):
        # Untimed problems exercise only the gap.plain rung; killing it
        # forces the supervisor to exhaust the ladder gracefully.
        plan = FaultPlan().fail("gap.plain", error=GapInfeasibleError, times=1)
        with inject_faults(plan):
            solve_qbp(small_problem, iterations=6, seed=0, telemetry=tel)
        fallbacks = [e for e in tel.events() if e.kind == "fallback"]
        assert len(fallbacks) == 1
        (event,) = fallbacks
        assert event.ladder == "gap"
        assert event.rung == "gap.plain"
        assert event.status == "error"
        assert "GapInfeasibleError" in event.error
        snap = tel.metrics_snapshot()
        assert snap["counters"]["supervisor.fallbacks"] == 1.0

    def test_bootstrap_ladder_reports_attempts(self, paper_problem, tel):
        # Bootstrap only runs the zero-B ladder on timed problems.
        bootstrap_initial_solution(
            paper_problem, attempts=2, iterations=3, seed=0, telemetry=tel
        )
        spans = {s.name for s in tel.tracer.spans}
        assert "qbp.bootstrap" in spans
        assert "qbp.solve" in spans


class TestCheckpointEvents:
    def test_checkpointer_emits_events_and_counters(self, small_problem, tmp_path, tel):
        path = tmp_path / "ckpt.json"
        checkpointer = QbpCheckpointer(path, every=1, telemetry=tel)
        solve_qbp(
            small_problem, iterations=4, seed=0,
            checkpointer=checkpointer, telemetry=tel,
        )
        checkpoints = [e for e in tel.events() if e.kind == "checkpoint"]
        assert checkpoints, "expected at least one checkpoint event"
        assert all(e.path == str(path) for e in checkpoints)
        assert all(e.bytes > 0 for e in checkpoints)
        snap = tel.metrics_snapshot()
        assert snap["counters"]["checkpoint.saves"] == float(len(checkpoints))
        assert snap["counters"]["checkpoint.bytes"] == float(
            sum(e.bytes for e in checkpoints)
        )


class TestDisabledOverhead:
    def test_disabled_path_adds_nothing(self, small_problem):
        # Ambient default is DISABLED; a fresh enabled bundle that is never
        # passed in must stay empty - proving the solver only talks to the
        # telemetry it is given.
        assert current() is DISABLED
        bystander = Telemetry.enabled_default()
        solve_qbp(small_problem, iterations=5, seed=0)
        assert bystander.events() == []
        assert bystander.tracer.spans == []
        assert len(bystander.metrics) == 0

    def test_disabled_solver_results_match_enabled(self, small_problem):
        plain = solve_qbp(small_problem, iterations=6, seed=1)
        tel = Telemetry.enabled_default()
        traced = solve_qbp(small_problem, iterations=6, seed=1, telemetry=tel)
        assert plain.penalized_cost == pytest.approx(traced.penalized_cost)
        assert plain.assignment.part.tolist() == traced.assignment.part.tolist()


class TestHarnessRows:
    def test_row_carries_timings_and_metrics(self, tel):
        workload = build_workload("cktb", scale=0.15)
        row = run_circuit_experiment(
            workload, with_timing=False, qbp_iterations=5, seed=0, telemetry=tel,
        )
        assert row.timings is not None
        timings = SolverTimings.from_dict(row.timings)
        assert timings.total >= 0.0
        assert row.metrics is not None
        assert row.metrics["counters"].get("solver.iterations", 0.0) > 0.0
        span_names = {s.name for s in tel.tracer.spans}
        assert {"harness.qbp", "harness.gfm", "harness.gkl"} <= span_names

class TestKernelInstrumentation:
    def test_iteration_timing_histograms_recorded(self, small_problem, tel):
        solve_qbp(small_problem, iterations=4, seed=0, telemetry=tel)
        histograms = tel.metrics_snapshot()["histograms"]
        assert histograms["qbp.iter.eta_seconds"]["count"] >= 4
        assert histograms["qbp.iter.gap_seconds"]["count"] >= 4
        assert histograms["qbp.iter.eta_seconds"]["sum"] >= 0.0

    def test_qbp_publishes_delta_counters(self, small_problem, tel):
        solve_qbp(small_problem, iterations=4, seed=0, telemetry=tel)
        counters = tel.metrics_snapshot()["counters"]
        # QBP's kernel runs stateless (no delta table), so only the eta
        # evaluations count here; rebuilds belong to the interchange path.
        assert counters.get("delta.eta_evals", 0) >= 4

    def test_gfm_publishes_delta_counters(self, small_problem, tel):
        start = bootstrap_initial_solution(small_problem, seed=0)
        gfm_partition(small_problem, start, telemetry=tel)
        counters = tel.metrics_snapshot()["counters"]
        assert counters.get("delta.full_rebuilds", 0) >= 1

    def test_disabled_telemetry_records_nothing(self, small_problem):
        result = solve_qbp(small_problem, iterations=4, seed=0, telemetry=DISABLED)
        assert result is not None  # no histograms/counters to assert: DISABLED
