"""CLI plumbing: add_telemetry_arguments -> session_from_args -> artifacts.

These are the seams every CLI (``repro.eval.run``, the partition tool)
relies on: the flag set, the disabled fast path, and the artifact
writing that ``telemetry_session`` performs on exit.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.obs.events import validate_trace_line
from repro.obs.ledger import read_ledger
from repro.obs.prof import PROFILE_ENV, MemorySpan
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import (
    DISABLED,
    add_telemetry_arguments,
    current,
    session_from_args,
    telemetry_session,
    write_combined_trace,
)


def _parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    add_telemetry_arguments(parser)
    return parser


class TestArgumentWiring:
    def test_defaults_are_all_off(self):
        args = _parser().parse_args([])
        assert args.trace is None
        assert args.trace_chrome is None
        assert args.metrics_out is None
        assert args.events_out is None
        assert args.profile is None
        assert args.prof_out is None
        assert args.ledger is None
        assert args.progress is False

    def test_profile_flag_forms(self):
        assert _parser().parse_args(["--profile"]).profile is True
        assert _parser().parse_args(["--profile", "0.01"]).profile == 0.01

    def test_all_flags_parse(self, tmp_path):
        args = _parser().parse_args(
            [
                "--trace", str(tmp_path / "t.jsonl"),
                "--prof-out", str(tmp_path / "p.txt"),
                "--ledger", str(tmp_path / "l.jsonl"),
                "--progress",
            ]
        )
        assert args.prof_out.endswith("p.txt")
        assert args.progress is True


class TestSessionFromArgs:
    def test_no_flags_stays_disabled(self):
        args = _parser().parse_args([])
        with session_from_args(args, root_span="t") as tel:
            assert tel is DISABLED
            assert current() is DISABLED

    def test_metrics_flag_enables_and_writes(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        args = _parser().parse_args(["--metrics-out", str(metrics)])
        with session_from_args(args, root_span="t") as tel:
            assert tel.enabled
            tel.counter("c").inc()
        assert json.loads(metrics.read_text())["counters"] == {"c": 1.0}

    def test_prof_out_implies_profile(self, tmp_path):
        prof = tmp_path / "prof.txt"
        args = _parser().parse_args(["--prof-out", str(prof)])
        with session_from_args(args, root_span="t") as tel:
            assert tel.profiler is not None
            assert tel.profiler.active
            assert PROFILE_ENV in os.environ
        assert PROFILE_ENV not in os.environ  # cleared on teardown
        assert prof.exists()

    def test_profile_interval_passes_through(self, tmp_path):
        args = _parser().parse_args(
            ["--profile", "0.02", "--prof-out", str(tmp_path / "p.txt")]
        )
        with session_from_args(args, root_span="t") as tel:
            assert tel.profiler.interval == 0.02

    def test_ledger_records_manifest_from_args(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        args = _parser().parse_args(
            ["--seed", "7", "--workers", "3", "--ledger", str(ledger)]
        )
        with session_from_args(args, root_span="my.run") as tel:
            tel.counter("c").inc(2)
        (record,) = read_ledger(ledger)
        assert record["manifest"]["label"] == "my.run"
        assert record["manifest"]["seed"] == 7
        assert record["manifest"]["workers"] == 3
        assert record["metrics"]["counters"] == {"c": 2.0}
        assert record["elapsed_seconds"] > 0

    def test_identical_args_give_identical_config_digest(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        for _ in range(2):
            args = _parser().parse_args(["--seed", "7", "--ledger", str(ledger)])
            with session_from_args(args, root_span="t"):
                pass
        a, b = read_ledger(ledger)
        assert a["manifest"]["config_digest"] == b["manifest"]["config_digest"]

    def test_telemetry_flags_do_not_change_config_digest(self, tmp_path):
        # Profiling a run must not make it incomparable to an unprofiled
        # run of the same workload: the digest covers workload config,
        # not observability switches.
        ledger = tmp_path / "ledger.jsonl"
        plain = ["--seed", "7", "--ledger", str(ledger)]
        profiled = plain + [
            "--profile",
            "--prof-out",
            str(tmp_path / "p.txt"),
            "--metrics-out",
            str(tmp_path / "m.json"),
            "--progress",
        ]
        for argv in (plain, profiled):
            args = _parser().parse_args(argv)
            with session_from_args(args, root_span="t"):
                pass
        a, b = read_ledger(ledger)
        assert a["manifest"]["config_digest"] == b["manifest"]["config_digest"]

    def test_progress_flag_attaches_reporter(self):
        args = _parser().parse_args(["--progress"])
        with session_from_args(args, root_span="t") as tel:
            assert any(isinstance(s, ProgressReporter) for s in tel.sinks)


class TestTelemetrySessionProfiling:
    def test_memory_spans_when_profiling(self, tmp_path):
        with telemetry_session(
            prof_out=tmp_path / "p.txt", root_span="t"
        ) as tel:
            span = tel.span("inner")
            assert isinstance(span, MemorySpan)
            with span:
                blob = bytearray(128 * 1024)
                del blob
        record = next(s for s in tel.tracer.spans if s.name == "inner")
        assert record.attrs["mem_peak_kb"] >= 128

    def test_plain_spans_without_profiler(self):
        with telemetry_session(root_span="t") as tel:
            assert tel.profiler is None
            assert not isinstance(tel.span("inner"), MemorySpan)

    def test_profile_without_prof_out_prints_summary(self, capsys):
        with telemetry_session(profile=True, root_span="t"):
            pass
        assert "profile:" in capsys.readouterr().err


class TestWriteCombinedTrace:
    def test_meta_leads_and_every_line_validates(self, tmp_path):
        from repro.obs.telemetry import Telemetry

        tel = Telemetry.enabled_default()
        with tel.span("s"):
            pass
        path = tmp_path / "combined.jsonl"
        count = write_combined_trace(tel, path)
        lines = path.read_text().splitlines()
        assert len(lines) == count
        records = [validate_trace_line(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["epoch_unix"] == tel.tracer.epoch_unix
        assert records[1]["type"] == "span"
