"""Progress events and the live status-line reporter."""

from __future__ import annotations

import io

from repro.obs.events import (
    IterationEvent,
    ProgressEvent,
    event_from_dict,
    event_to_dict,
    validate_trace_line,
)
from repro.obs.progress import ProgressReporter, format_progress


def _event(**kwargs):
    defaults = dict(pool="eval.table", done=3, total=7, elapsed_seconds=12.4)
    defaults.update(kwargs)
    return ProgressEvent(**defaults)


class TestProgressEvent:
    def test_roundtrips_through_dict(self):
        event = _event(running=2, failed=1, eta_seconds=16.5, worker=None)
        payload = event_to_dict(event)
        assert payload["event"] == "progress"
        assert event_from_dict(payload) == event

    def test_validates_as_trace_line(self):
        validate_trace_line(event_to_dict(_event()))


class TestFormatProgress:
    def test_full_line(self):
        line = format_progress(_event(running=2, failed=1, eta_seconds=16.5))
        assert line == (
            "[eval.table] 3/7 done (2 running, 1 failed) "
            "elapsed 12.4s eta ~16.5s"
        )

    def test_minimal_line(self):
        assert format_progress(_event()) == "[eval.table] 3/7 done elapsed 12.4s"


class TestProgressReporter:
    def test_renders_and_overwrites(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.emit(_event(done=1))
        reporter.emit(_event(done=2))
        out = stream.getvalue()
        assert out.count("\r") == 2
        assert "2/7 done" in out

    def test_ignores_other_kinds(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.emit(
            IterationEvent(solver="qbp", iteration=1, cost=1.0, best_cost=1.0)
        )
        assert stream.getvalue() == ""
        reporter.close()
        assert stream.getvalue() == ""  # close with nothing written is silent

    def test_close_terminates_line_once(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.emit(_event())
        reporter.close()
        reporter.close()
        assert stream.getvalue().endswith("\n")
        assert stream.getvalue().count("\n") == 1

    def test_broken_stream_goes_quiet(self):
        stream = io.StringIO()
        stream.close()
        reporter = ProgressReporter(stream)
        reporter.emit(_event())  # must not raise
        reporter.close()
