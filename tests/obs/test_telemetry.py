"""Tests for repro.obs.telemetry (bundle, ambient resolution, sessions)."""

import json

from repro.obs.events import IterationEvent, validate_trace_line
from repro.obs.metrics import NULL_COUNTER, empty_snapshot
from repro.obs.telemetry import (
    DISABLED,
    Telemetry,
    current,
    resolve,
    telemetry_session,
    use_telemetry,
    write_combined_trace,
)
from repro.obs.trace import NULL_SPAN


def _iteration(i=1):
    return IterationEvent(solver="qbp", iteration=i, cost=1.0, best_cost=1.0)


class TestDisabled:
    def test_ambient_default_is_disabled(self):
        assert current() is DISABLED
        assert resolve(None) is DISABLED

    def test_disabled_span_is_null_singleton(self):
        assert DISABLED.span("anything", attr=1) is NULL_SPAN

    def test_disabled_instruments_are_null(self):
        assert DISABLED.counter("c") is NULL_COUNTER

    def test_disabled_emit_and_snapshot(self):
        DISABLED.emit(_iteration())  # swallowed
        assert DISABLED.events() == []
        assert DISABLED.metrics_snapshot() == empty_snapshot()


class TestResolution:
    def test_explicit_wins_over_ambient(self):
        tel = Telemetry.enabled_default()
        assert resolve(tel) is tel

    def test_use_telemetry_installs_and_restores(self):
        tel = Telemetry.enabled_default()
        with use_telemetry(tel):
            assert current() is tel
            assert resolve(None) is tel
        assert current() is DISABLED

    def test_enabled_bundle_records(self):
        tel = Telemetry.enabled_default()
        with tel.span("work"):
            tel.counter("c").inc()
            tel.emit(_iteration())
        assert [s.name for s in tel.tracer.spans] == ["work"]
        assert tel.metrics_snapshot()["counters"] == {"c": 1.0}
        assert [e.kind for e in tel.events()] == ["iteration"]


class TestSession:
    def test_writes_all_artifacts(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        chrome = tmp_path / "chrome.json"
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        with telemetry_session(
            trace_path=trace, chrome_path=chrome,
            metrics_path=metrics, events_path=events, root_span="test-root",
        ) as tel:
            assert current() is tel
            with tel.span("inner"):
                tel.counter("c").inc()
                tel.emit(_iteration())
        assert current() is DISABLED

        lines = trace.read_text().splitlines()
        records = [validate_trace_line(line) for line in lines]
        span_names = [r["name"] for r in records if r["type"] == "span"]
        assert span_names == ["test-root", "inner"]
        assert sum(1 for r in records if r["type"] == "event") == 1

        chrome_payload = json.loads(chrome.read_text())
        assert isinstance(chrome_payload["traceEvents"], list)
        assert chrome_payload["metadata"]["clock"] == "perf_counter"
        assert json.loads(metrics.read_text())["counters"] == {"c": 1.0}
        (event_line,) = events.read_text().splitlines()
        assert validate_trace_line(event_line)["event"] == "iteration"

    def test_root_span_covers_inner_work(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with telemetry_session(trace_path=trace, root_span="root") as tel:
            with tel.span("a"):
                pass
        records = [validate_trace_line(line) for line in trace.read_text().splitlines()]
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        root, inner = spans["root"], spans["a"]
        assert inner["parent"] == root["id"]
        assert root["wall"] >= inner["wall"]

    def test_artifacts_written_even_on_exception(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        try:
            with telemetry_session(trace_path=trace, root_span="root"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        meta_line, line = trace.read_text().splitlines()
        assert validate_trace_line(meta_line)["type"] == "meta"
        assert validate_trace_line(line)["attrs"]["error"] == "RuntimeError"

    def test_write_combined_trace_counts_lines(self, tmp_path):
        tel = Telemetry.enabled_default()
        with tel.span("s"):
            pass
        tel.emit(_iteration())
        path = tmp_path / "combined.jsonl"
        assert write_combined_trace(tel, path) == 3  # meta + span + event
