"""Shared fixtures: small deterministic circuits, topologies and problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.problem import PartitioningProblem
from repro.netlist.circuit import Circuit
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


@pytest.fixture
def tiny_circuit() -> Circuit:
    """Three components a, b, c wired a-b (5 wires) and b-c (2 wires).

    This is exactly the circuit of the paper's Section 3.3 example.
    """
    ckt = Circuit("paper-example")
    ckt.add_component("a", size=1.0)
    ckt.add_component("b", size=1.0)
    ckt.add_component("c", size=1.0)
    ckt.add_undirected_wire("a", "b", 5.0)
    ckt.add_undirected_wire("b", "c", 2.0)
    return ckt


@pytest.fixture
def paper_topology():
    """The paper example's 2x2 grid of four partitions, Manhattan B = D.

    Unit capacities: one unit-size component per slot, so the example's
    solutions are genuinely spread out (the paper does not give
    capacities; with loose ones the optimum would trivially co-locate
    everything).
    """
    return grid_topology(2, 2, capacity=1.0)


@pytest.fixture
def paper_timing(tiny_circuit) -> TimingConstraints:
    """The paper example's D_C: budget 1 between a-b and b-c, inf for a-c."""
    tc = TimingConstraints(3)
    tc.add(0, 1, 1.0, symmetric=True)
    tc.add(1, 2, 1.0, symmetric=True)
    return tc


@pytest.fixture
def paper_problem(tiny_circuit, paper_topology, paper_timing) -> PartitioningProblem:
    """The full Section 3.3 instance (P = 0)."""
    return PartitioningProblem(tiny_circuit, paper_topology, timing=paper_timing)


@pytest.fixture
def small_circuit() -> Circuit:
    """A seeded 24-component clustered circuit used across solver tests."""
    spec = ClusteredCircuitSpec(
        name="small", num_components=24, num_wires=80, num_clusters=4
    )
    return generate_clustered_circuit(spec, seed=42)


@pytest.fixture
def small_problem(small_circuit) -> PartitioningProblem:
    """The small circuit on a 2x2 grid with ~30% capacity slack."""
    topo = grid_topology(2, 2, capacity=small_circuit.total_size() / 4 * 1.3)
    return PartitioningProblem(small_circuit, topo)


@pytest.fixture
def medium_problem() -> PartitioningProblem:
    """An 80-component problem on a 4x4 grid (16 partitions)."""
    spec = ClusteredCircuitSpec(
        name="medium", num_components=80, num_wires=400, num_clusters=8
    )
    circuit = generate_clustered_circuit(spec, seed=7)
    topo = grid_topology(4, 4, capacity=circuit.total_size() / 16 * 1.4)
    return PartitioningProblem(circuit, topo)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_feasible_assignment(problem: PartitioningProblem, rng) -> Assignment:
    """Test helper: rejection-sample a capacity-feasible assignment."""
    from repro.solvers.greedy import greedy_feasible_assignment

    return greedy_feasible_assignment(problem, rng)
