"""The layering contract, enforced as a test (mirrors CI's import check).

``repro.core`` and ``repro.engine`` are foundation layers: they must
import nothing from the algorithm packages (``solvers``, ``baselines``)
or the application layers (``eval``, ``tools``, ``apps``), and the
import graph of the whole package must stay acyclic.  The same rules
run in CI via ``scripts/check_imports.py``; this test keeps them
enforced by the plain test suite too.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

sys.path.insert(0, str(REPO_ROOT / "scripts"))
import check_imports  # noqa: E402


def test_no_layering_violations():
    graph = check_imports.build_graph(SRC_ROOT)
    assert check_imports.check_layering(graph) == []


def test_no_import_cycles():
    graph = check_imports.build_graph(SRC_ROOT)
    assert check_imports.check_cycles(graph) == []


def test_engine_transitive_closure_stays_below_solvers():
    """Nothing reachable from repro.engine lands in solvers/baselines/eval.

    Computed on the AST import graph (the root ``repro/__init__.py`` is
    an aggregation facade, so a runtime ``import repro.engine`` always
    pulls the whole package in; the static closure is the real contract).
    """
    graph = check_imports.build_graph(SRC_ROOT)
    known = set(graph)

    def resolve(target):
        while target and target not in known:
            if "." not in target:
                return None
            target = target.rsplit(".", 1)[0]
        return target or None

    closure, frontier = set(), {"repro.engine"}
    while frontier:
        module = frontier.pop()
        closure.add(module)
        for target in graph.get(module, ()):
            resolved = resolve(target)
            # The package roots re-export from higher layers; skip them.
            if resolved in (None, "repro") or resolved in closure:
                continue
            frontier.add(resolved)

    offenders = sorted(
        m
        for m in closure
        if m.startswith(("repro.solvers", "repro.baselines", "repro.eval"))
    )
    assert offenders == []


def test_consumers_import_solvers_only_via_registry():
    """tools/service/eval dispatch through repro.pipeline, never directly.

    The registry is the one place where solver implementations are
    wired to names; a consumer package importing ``repro.solvers`` or
    ``repro.baselines`` directly would bypass it (and silently dodge
    the capability flags and config validation the pipeline applies).
    """
    graph = check_imports.build_graph(SRC_ROOT)
    offenders = []
    for module, imported in sorted(graph.items()):
        if not module.startswith(("repro.tools", "repro.service", "repro.eval")):
            continue
        for target in sorted(imported):
            if target.startswith(("repro.solvers", "repro.baselines")):
                offenders.append(f"{module} -> {target}")
    assert offenders == []
