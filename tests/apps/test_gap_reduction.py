"""Tests for repro.apps.gap_reduction (Section 2.2.2 special cases)."""

import numpy as np
import pytest

from repro.apps.gap_reduction import (
    gap_result_to_assignment,
    is_linear_assignment,
    solve_as_generalized_assignment,
    solve_as_linear_assignment,
)
from repro.core.problem import PartitioningProblem
from repro.netlist.circuit import Circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology
from repro.topology.partition import Partition, Topology


def linear_problem(n=6, m=3, *, unit=False, timing=False, wires=False, beta=0.0):
    rng = np.random.default_rng(0)
    ckt = Circuit("lin")
    for j in range(n):
        size = 1.0 if unit else float(rng.uniform(1, 3))
        ckt.add_component(f"u{j}", size=size)
    if wires:
        ckt.add_wire(0, 1, 2.0)
    if unit:
        parts = [Partition(f"p{i}", capacity=1.0) for i in range(m)]
        topo = Topology(parts, np.zeros((m, m)))
    else:
        topo = grid_topology(1, m, capacity=ckt.total_size() / m * 1.5)
    tc = None
    if timing:
        tc = TimingConstraints(n)
        tc.add(0, 1, 1.0)
    p = rng.uniform(0, 10, (m, n))
    return PartitioningProblem(ckt, topo, timing=tc, linear_cost=p, beta=beta)


class TestGeneralizedAssignment:
    def test_solves_linear_problem(self):
        problem = linear_problem()
        result = solve_as_generalized_assignment(problem)
        assignment = gap_result_to_assignment(result, problem.num_partitions)
        from repro.core.constraints import capacity_violations

        assert not capacity_violations(
            assignment, problem.sizes(), problem.capacities()
        )

    def test_rejects_timing(self):
        problem = linear_problem(timing=True)
        with pytest.raises(ValueError, match="timing"):
            solve_as_generalized_assignment(problem)

    def test_rejects_quadratic_term(self):
        problem = linear_problem(wires=True, beta=1.0)
        with pytest.raises(ValueError, match="quadratic"):
            solve_as_generalized_assignment(problem)

    def test_zero_beta_with_wires_allowed(self):
        problem = linear_problem(wires=True, beta=0.0)
        solve_as_generalized_assignment(problem)

    def test_alpha_scaling_applied(self):
        problem = linear_problem()
        scaled = PartitioningProblem(
            problem.circuit,
            problem.topology,
            linear_cost=problem.linear_cost_matrix(),
            alpha=2.0,
            beta=0.0,
        )
        base = solve_as_generalized_assignment(problem)
        doubled = solve_as_generalized_assignment(scaled)
        assert doubled.cost == pytest.approx(2.0 * base.cost)


class TestLinearAssignment:
    def test_detects_degenerate_case(self):
        assert is_linear_assignment(linear_problem(n=3, m=3, unit=True))
        assert not is_linear_assignment(linear_problem(n=6, m=3))

    def test_exact_optimum(self):
        problem = linear_problem(n=4, m=4, unit=True)
        result = solve_as_linear_assignment(problem)
        # Compare against the GAP heuristic (which must not beat the
        # exact LAP optimum).
        gap = solve_as_generalized_assignment(problem)
        assert result.cost <= gap.cost + 1e-9

    def test_rejects_non_degenerate(self):
        with pytest.raises(ValueError, match="degeneracy"):
            solve_as_linear_assignment(linear_problem(n=6, m=3))
