"""Tests for repro.apps.qap (Quadratic Assignment special case)."""

import itertools

import numpy as np
import pytest

from repro.apps.qap import qap_cost, random_qap_instance, solve_qap


def brute_force_qap(flow, distance):
    n = flow.shape[0]
    best = np.inf
    for perm in itertools.permutations(range(n)):
        best = min(best, qap_cost(flow, distance, np.array(perm)))
    return best


class TestQapCost:
    def test_known_value(self):
        flow = np.array([[0.0, 3.0], [3.0, 0.0]])
        distance = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert qap_cost(flow, distance, np.array([0, 1])) == 12.0
        assert qap_cost(flow, distance, np.array([1, 0])) == 12.0


class TestSolveQap:
    def test_permutation_returned(self):
        flow, distance = random_qap_instance(8, seed=0)
        result = solve_qap(flow, distance, iterations=30, seed=1)
        assert sorted(result.permutation.tolist()) == list(range(8))

    def test_cost_matches_permutation(self):
        flow, distance = random_qap_instance(8, seed=2)
        result = solve_qap(flow, distance, iterations=30, seed=1)
        assert result.cost == pytest.approx(
            qap_cost(flow, distance, result.permutation)
        )

    def test_close_to_optimum_on_small_instances(self):
        ratios = []
        for seed in range(6):
            flow, distance = random_qap_instance(6, seed=seed)
            optimum = brute_force_qap(flow, distance)
            result = solve_qap(flow, distance, iterations=60, seed=seed)
            assert result.cost >= optimum - 1e-9
            ratios.append(result.cost / max(optimum, 1e-9))
        assert np.mean(ratios) < 1.12

    def test_never_worse_than_initial(self):
        flow, distance = random_qap_instance(10, seed=3)
        initial = np.arange(10)
        result = solve_qap(flow, distance, iterations=25, initial=initial)
        assert result.cost <= qap_cost(flow, distance, initial) + 1e-9

    def test_history_monotone_best(self):
        flow, distance = random_qap_instance(9, seed=4)
        result = solve_qap(flow, distance, iterations=20, seed=0)
        assert min(result.history) == pytest.approx(result.cost)

    def test_deterministic_given_seed(self):
        flow, distance = random_qap_instance(9, seed=5)
        a = solve_qap(flow, distance, iterations=15, seed=2)
        b = solve_qap(flow, distance, iterations=15, seed=2)
        assert np.array_equal(a.permutation, b.permutation)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            solve_qap(np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            solve_qap(-np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            solve_qap(np.zeros((2, 2)), np.zeros((2, 2)), iterations=0)
        with pytest.raises(ValueError):
            solve_qap(np.zeros((2, 2)), np.zeros((2, 2)), initial=np.array([0, 0]))


class TestRandomInstance:
    def test_shapes_and_symmetry(self):
        flow, distance = random_qap_instance(7, seed=0)
        assert flow.shape == (7, 7)
        assert np.array_equal(flow, flow.T)
        assert np.array_equal(distance, distance.T)
        assert np.array_equal(np.diag(flow), np.zeros(7))

    def test_grid_distances_manhattan(self):
        _, distance = random_qap_instance(4, seed=0, grid=True)
        # 2x2 grid: max Manhattan distance is 2.
        assert distance.max() == 2.0

    def test_non_grid_mode(self):
        _, distance = random_qap_instance(5, seed=1, grid=False)
        assert (distance >= 0).all()

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            random_qap_instance(0)
