"""Tests for repro.apps.mcm (TCM re-partitioning, Section 2.2.1)."""

import numpy as np
import pytest

from repro.apps.mcm import deviation_cost_matrix, repartition_mcm
from repro.core.assignment import Assignment
from repro.core.constraints import check_feasibility
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology
from repro.topology.partition import Partition, Topology


@pytest.fixture
def setting():
    spec = ClusteredCircuitSpec("tcm", num_components=30, num_wires=90, num_clusters=4)
    circuit = generate_clustered_circuit(spec, seed=31)
    topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.25)
    return circuit, topo


class TestDeviationMatrix:
    def test_formula(self, setting):
        circuit, topo = setting
        initial = Assignment(np.zeros(30, dtype=int), 4)
        p = deviation_cost_matrix(topo, initial, circuit.sizes())
        assert p.shape == (4, 30)
        # Staying put costs nothing.
        assert np.array_equal(p[0, :], np.zeros(30))
        # Moving to the far corner costs size * manhattan(2).
        assert p[3, 5] == pytest.approx(circuit.sizes()[5] * 2.0)

    def test_bigger_components_cost_more_to_move(self, setting):
        circuit, topo = setting
        initial = Assignment(np.zeros(30, dtype=int), 4)
        p = deviation_cost_matrix(topo, initial, circuit.sizes())
        sizes = circuit.sizes()
        j_small = int(np.argmin(sizes))
        j_big = int(np.argmax(sizes))
        assert p[3, j_big] > p[3, j_small]

    def test_requires_positions(self, setting):
        circuit, _ = setting
        bare = Topology(
            [Partition("p0", 1e9), Partition("p1", 1e9)], np.zeros((2, 2))
        )
        with pytest.raises(ValueError, match="positions"):
            deviation_cost_matrix(bare, Assignment(np.zeros(30, dtype=int), 2), circuit.sizes())

    def test_size_vector_checked(self, setting):
        circuit, topo = setting
        with pytest.raises(ValueError):
            deviation_cost_matrix(topo, Assignment(np.zeros(30, dtype=int), 4), np.ones(5))


class TestRepartition:
    def test_output_is_feasible(self, setting):
        circuit, topo = setting
        # Designer's assignment: everything piled into slot 0 (violates C1).
        initial = Assignment(np.zeros(30, dtype=int), 4)
        result = repartition_mcm(circuit, topo, initial, iterations=40, seed=0)
        assert result.feasible

    def test_deviation_consistent(self, setting):
        circuit, topo = setting
        initial = Assignment(np.zeros(30, dtype=int), 4)
        result = repartition_mcm(circuit, topo, initial, iterations=40, seed=0)
        p = deviation_cost_matrix(topo, initial, circuit.sizes())
        manual = p[result.assignment.part, np.arange(30)].sum()
        assert result.total_deviation == pytest.approx(manual)

    def test_feasible_initial_kept_nearly_intact(self, setting):
        circuit, topo = setting
        # A legal initial assignment: deviation-minimal answer is itself.
        from repro.solvers.greedy import greedy_feasible_assignment
        from repro.core.problem import PartitioningProblem

        legal = greedy_feasible_assignment(PartitioningProblem(circuit, topo), seed=5)
        result = repartition_mcm(circuit, topo, legal, iterations=40, seed=0)
        assert result.total_deviation == pytest.approx(0.0)
        assert result.moved_components == 0

    def test_with_timing_constraints(self, setting):
        circuit, topo = setting
        from repro.core.problem import PartitioningProblem
        from repro.solvers.greedy import greedy_feasible_assignment

        ref = greedy_feasible_assignment(PartitioningProblem(circuit, topo), seed=3)
        timing = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref.part, count=30, min_budget=1.0, seed=1
        )
        initial = Assignment(np.zeros(30, dtype=int), 4)
        result = repartition_mcm(
            circuit, topo, initial, timing=timing, iterations=60, seed=0
        )
        problem_report = result.feasible
        assert problem_report

    def test_minimises_versus_naive(self, setting):
        circuit, topo = setting
        initial = Assignment(np.zeros(30, dtype=int), 4)
        result = repartition_mcm(circuit, topo, initial, iterations=60, seed=0)
        # Naive legalisation: greedy best-fit ignoring deviation.
        from repro.core.problem import PartitioningProblem
        from repro.solvers.greedy import greedy_feasible_assignment

        p = deviation_cost_matrix(topo, initial, circuit.sizes())
        naive = greedy_feasible_assignment(PartitioningProblem(circuit, topo), seed=2)
        naive_dev = p[naive.part, np.arange(30)].sum()
        assert result.total_deviation <= naive_dev + 1e-9
