"""Tests for repro.analysis.slack."""

import numpy as np
import pytest

from repro.analysis.slack import timing_slack_report
from repro.core.assignment import Assignment


class TestTimingSlackReport:
    def test_feasible_assignment(self, paper_problem):
        report = timing_slack_report(paper_problem, Assignment([0, 1, 3], 4))
        assert report.num_constraints == 4  # two pairs, both directions
        assert report.violations == 0
        assert report.feasible
        # Both pairs at distance exactly 1 against budget 1: all tight.
        assert report.tight == 4
        assert report.worst_slack == pytest.approx(0.0)

    def test_violating_assignment(self, paper_problem):
        report = timing_slack_report(paper_problem, Assignment([0, 3, 1], 4))
        assert report.violations == 2  # a<->b at distance 2, budget 1
        assert not report.feasible
        assert report.worst_slack == pytest.approx(-1.0)

    def test_tightest_pairs_sorted(self, paper_problem):
        report = timing_slack_report(paper_problem, Assignment([0, 3, 1], 4))
        slacks = [s for (_, _, s) in report.tightest_pairs]
        assert slacks == sorted(slacks)
        assert report.tightest_pairs[0][2] == pytest.approx(-1.0)

    def test_top_limits_list(self, paper_problem):
        report = timing_slack_report(
            paper_problem, Assignment([0, 1, 3], 4), top=2
        )
        assert len(report.tightest_pairs) == 2

    def test_unconstrained_problem(self, small_problem):
        a = Assignment.round_robin(small_problem.num_components, 4)
        report = timing_slack_report(small_problem, a)
        assert report.num_constraints == 0
        assert report.feasible
        assert report.worst_slack == np.inf

    def test_colocated_gives_full_slack(self, paper_problem):
        report = timing_slack_report(paper_problem, Assignment([2, 2, 2], 4))
        assert report.worst_slack == pytest.approx(1.0)  # budget 1, delay 0
        assert report.tight == 0
