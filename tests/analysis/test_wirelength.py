"""Tests for repro.analysis.wirelength."""

import pytest

from repro.analysis.wirelength import cut_statistics, wirelength_by_partition_pair
from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator


class TestCutStatistics:
    def test_all_internal(self, paper_problem):
        stats = cut_statistics(paper_problem, Assignment([0, 0, 0], 4))
        assert stats.cut_wires == 0.0
        assert stats.internal_wires == stats.total_wires == 14.0
        assert stats.cut_fraction == 0.0
        assert stats.total_weighted_length == 0.0

    def test_all_cut(self, paper_problem):
        stats = cut_statistics(paper_problem, Assignment([0, 1, 3], 4))
        assert stats.internal_wires == 0.0
        assert stats.cut_fraction == 1.0
        # Both wired pairs at distance 1: weighted = 2*(5 + 2).
        assert stats.total_weighted_length == pytest.approx(14.0)
        assert stats.mean_cut_distance == pytest.approx(1.0)

    def test_weighted_length_matches_objective(self, small_problem, rng):
        evaluator = ObjectiveEvaluator(small_problem)
        a = Assignment.uniform_random(
            small_problem.num_components, small_problem.num_partitions, rng
        )
        stats = cut_statistics(small_problem, a)
        assert stats.total_weighted_length == pytest.approx(
            evaluator.quadratic_cost(a)
        )

    def test_empty_circuit(self):
        from repro.core.problem import PartitioningProblem
        from repro.netlist.circuit import Circuit
        from repro.topology.grid import grid_topology

        ckt = Circuit()
        ckt.add_component("only")
        problem = PartitioningProblem(ckt, grid_topology(1, 2, capacity=5.0))
        stats = cut_statistics(problem, Assignment([0], 2))
        assert stats.total_wires == 0.0
        assert stats.cut_fraction == 0.0


class TestWirelengthByPair:
    def test_pairs_and_totals(self, paper_problem):
        a = Assignment([0, 1, 3], 4)
        by_pair = wirelength_by_partition_pair(paper_problem, a)
        # a<->b wires between partitions 0 and 1 (both directions),
        # b<->c between 1 and 3.
        assert by_pair[(0, 1)] == pytest.approx(5.0)
        assert by_pair[(1, 0)] == pytest.approx(5.0)
        assert by_pair[(1, 3)] == pytest.approx(2.0)
        assert sum(by_pair.values()) == pytest.approx(14.0)

    def test_internal_wires_omitted(self, paper_problem):
        by_pair = wirelength_by_partition_pair(paper_problem, Assignment([0, 0, 0], 4))
        assert by_pair == {}
