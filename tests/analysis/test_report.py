"""Tests for repro.analysis.report and repro.analysis.compare."""

import numpy as np
import pytest

from repro.analysis.compare import compare_assignments
from repro.analysis.report import analyze_solution, render_report
from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator


class TestAnalyzeSolution:
    def test_objective_matches_evaluator(self, paper_problem):
        a = Assignment([0, 1, 3], 4)
        report = analyze_solution(paper_problem, a)
        evaluator = ObjectiveEvaluator(paper_problem)
        assert report.objective == pytest.approx(evaluator.cost(a))
        assert report.quadratic_cost == pytest.approx(evaluator.quadratic_cost(a))

    def test_utilizations(self, paper_problem):
        a = Assignment([0, 1, 3], 4)
        report = analyze_solution(paper_problem, a)
        assert len(report.utilizations) == 4
        loads = [u.load for u in report.utilizations]
        assert loads == [1.0, 1.0, 0.0, 1.0]
        assert report.max_utilization == pytest.approx(1.0)
        assert report.feasible

    def test_overload_detected(self, paper_problem):
        report = analyze_solution(paper_problem, Assignment([0, 0, 0], 4))
        assert any(u.overloaded for u in report.utilizations)
        assert not report.feasible

    def test_timing_violation_detected(self, paper_problem):
        report = analyze_solution(paper_problem, Assignment([0, 3, 1], 4))
        assert report.timing.violations == 2
        assert not report.feasible


class TestRenderReport:
    def test_sections_present(self, paper_problem):
        text = render_report(analyze_solution(paper_problem, Assignment([0, 1, 3], 4)))
        assert "objective:" in text
        assert "partition utilisation:" in text
        assert "interconnect:" in text
        assert "timing:" in text
        assert "feasible: yes" in text

    def test_infeasible_flagged(self, paper_problem):
        text = render_report(analyze_solution(paper_problem, Assignment([0, 3, 1], 4)))
        assert "feasible: NO" in text

    def test_unconstrained_timing_line(self, small_problem):
        a = Assignment.round_robin(small_problem.num_components, 4)
        text = render_report(analyze_solution(small_problem, a))
        assert "timing: unconstrained" in text


class TestCompareAssignments:
    def test_identical(self):
        a = Assignment([0, 1, 2], 3)
        diff = compare_assignments(a, a.copy())
        assert diff.num_moved == 0
        assert diff.moved_fraction == 0.0

    def test_moved_components_listed(self):
        a = Assignment([0, 1, 2], 3)
        b = Assignment([0, 2, 2], 3)
        diff = compare_assignments(a, b)
        assert diff.moved_components == (1,)
        assert diff.moved_fraction == pytest.approx(1 / 3)

    def test_moved_size(self):
        a = Assignment([0, 1], 2)
        b = Assignment([1, 1], 2)
        diff = compare_assignments(a, b, sizes=np.array([5.0, 7.0]))
        assert diff.total_moved_size == 5.0

    def test_deviation_with_topology(self, paper_topology):
        a = Assignment([0, 0, 0], 4)
        b = Assignment([3, 0, 1], 4)  # moves: distance 2 and distance 1
        sizes = np.array([2.0, 1.0, 3.0])
        diff = compare_assignments(a, b, sizes=sizes, topology=paper_topology)
        assert diff.total_deviation == pytest.approx(2.0 * 2 + 3.0 * 1)

    def test_deviation_unweighted(self, paper_topology):
        a = Assignment([0, 0, 0], 4)
        b = Assignment([3, 0, 0], 4)
        diff = compare_assignments(a, b, topology=paper_topology)
        assert diff.total_deviation == pytest.approx(2.0)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            compare_assignments(Assignment([0], 2), Assignment([0, 1], 2))
        with pytest.raises(ValueError):
            compare_assignments(Assignment([0], 2), Assignment([0], 3))
        with pytest.raises(ValueError):
            compare_assignments(
                Assignment([0], 2), Assignment([1], 2), sizes=np.ones(3)
            )
