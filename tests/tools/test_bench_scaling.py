"""Smoke tests for the kernel scaling benchmark (benchmarks/bench_scaling.py).

Runs tiny sweeps so tier-1 proves the benchmark stays runnable and its
``bench-scaling-v1`` output stays compatible with the check_bench gate;
the real grid runs in the bench-gate / bench-nightly CI jobs.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "benchmarks_bench_scaling", REPO / "benchmarks" / "bench_scaling.py"
)
bench_scaling = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_scaling)
sys.modules["benchmarks_bench_scaling"] = bench_scaling

_cb_spec = importlib.util.spec_from_file_location(
    "scripts_check_bench_for_scaling", REPO / "scripts" / "check_bench.py"
)
check_bench_mod = importlib.util.module_from_spec(_cb_spec)
_cb_spec.loader.exec_module(check_bench_mod)


@pytest.fixture(scope="module")
def tiny_sweep():
    return bench_scaling.run_sweep(sizes=[16, 32], partitions=[2, 4], moves=4)


class TestSweep:
    def test_document_shape(self, tiny_sweep):
        assert tiny_sweep["format"] == "bench-scaling-v1"
        assert tiny_sweep["sizes"] == [16, 32]
        assert tiny_sweep["partitions"] == [2, 4]
        assert len(tiny_sweep["cells"]) == 4

    def test_cells_carry_both_kernels_and_counters(self, tiny_sweep):
        for cell in tiny_sweep["cells"]:
            assert set(cell["kernels"]) == {"batched", "scalar"}
            for side in cell["kernels"].values():
                assert side["seconds"] >= 0.0
                assert side["counters"]["delta.moves"] == cell["moves"]
                assert side["counters"]["delta.full_rebuilds"] >= 1.0
            assert cell["speedup"] > 0.0

    def test_counters_are_kernel_independent(self, tiny_sweep):
        for cell in tiny_sweep["cells"]:
            assert (
                cell["kernels"]["batched"]["counters"]
                == cell["kernels"]["scalar"]["counters"]
            )

    def test_sweep_is_deterministic_apart_from_timings(self, tiny_sweep):
        again = bench_scaling.run_sweep(sizes=[16, 32], partitions=[2, 4], moves=4)
        for a, b in zip(tiny_sweep["cells"], again["cells"]):
            assert a["kernels"]["batched"]["counters"] == (
                b["kernels"]["batched"]["counters"]
            )

    def test_output_passes_its_own_gate(self, tiny_sweep):
        # At toy sizes the batched kernel's call overhead can lose to the
        # scalar loop, so waive the speedup floor: this test is about
        # schema compatibility (counters + timings), not performance.
        baseline = json.loads(json.dumps(tiny_sweep))
        for cell in baseline["cells"]:
            cell["min_speedup"] = 0.0
        assert check_bench_mod.check_scaling(tiny_sweep, baseline) == []

    def test_kernel_divergence_aborts(self, tiny_sweep):
        results = {
            "batched": (0.1, [1, 2], [0.0, 0.0], None),
            "scalar": (0.2, [1, 3], [0.0, 0.0], None),
        }
        with pytest.raises(AssertionError, match="different candidates"):
            bench_scaling.assert_equivalent(results, "n=16 k=2")


class TestCli:
    def test_writes_document(self, tmp_path):
        out = tmp_path / "BENCH_scaling.json"
        code = bench_scaling.main(
            ["--sizes", "16", "--partitions", "2", "--moves", "3",
             "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "bench-scaling-v1"
        assert payload["cells"][0]["moves"] == 3

    def test_rejects_degenerate_arguments(self):
        with pytest.raises(SystemExit):
            bench_scaling.main(["--moves", "0"])
        with pytest.raises(SystemExit):
            bench_scaling.main(["--sizes", "1"])
