"""The run-ledger report CLI (repro.tools.runledger)."""

from __future__ import annotations

from repro.obs.ledger import append_record, make_record, run_manifest
from repro.obs.metrics import empty_snapshot
from repro.tools.runledger import compare_records, main as runledger_main


def _snapshot(counters=None, gauges=None):
    snapshot = empty_snapshot()
    snapshot["counters"] = dict(counters or {})
    snapshot["gauges"] = dict(gauges or {})
    return snapshot


def _append(path, counters=None, gauges=None, config=None, **kwargs):
    record = make_record(
        manifest=run_manifest(
            label="eval.run", seed=0, workers=1, config=config or {"x": 1}
        ),
        metrics=_snapshot(counters, gauges),
        **kwargs,
    )
    append_record(path, record)
    return record


class TestCompareRecords:
    def test_identical_records_have_no_regressions(self, tmp_path):
        ledger = tmp_path / "l.jsonl"
        for _ in range(2):
            _append(ledger, counters={"c": 5.0}, gauges={"t_seconds": 1.0})
        from repro.obs.ledger import read_ledger

        a, b = read_ledger(ledger)
        assert compare_records(a, b) == []

    def test_counter_change_is_a_regression(self, tmp_path):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, counters={"c": 5.0})
        _append(ledger, counters={"c": 6.0})
        from repro.obs.ledger import read_ledger

        a, b = read_ledger(ledger)
        problems = compare_records(a, b)
        assert any("counter c changed" in p for p in problems)

    def test_timing_growth_beyond_tolerance(self, tmp_path):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, gauges={"t_seconds": 1.0})
        _append(ledger, gauges={"t_seconds": 2.0})
        from repro.obs.ledger import read_ledger

        a, b = read_ledger(ledger)
        assert compare_records(a, b, time_tolerance=1.5)
        assert compare_records(a, b, time_tolerance=3.0) == []

    def test_config_change_is_flagged(self, tmp_path):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, config={"x": 1})
        _append(ledger, config={"x": 2})
        from repro.obs.ledger import read_ledger

        a, b = read_ledger(ledger)
        assert any("config digest changed" in p for p in compare_records(a, b))


class TestCli:
    def test_show_lists_records(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, elapsed_seconds=1.25, profile_samples=10)
        assert runledger_main(["show", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out
        assert "eval.run" in out

    def test_show_empty_ledger(self, tmp_path, capsys):
        assert runledger_main(["show", str(tmp_path / "none.jsonl")]) == 0
        assert "no records" in capsys.readouterr().out

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        for _ in range(2):
            _append(ledger, counters={"c": 5.0}, gauges={"t_seconds": 1.0})
        assert runledger_main(["compare", str(ledger)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exits_one(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, counters={"c": 5.0})
        _append(ledger, counters={"c": 7.0})
        assert runledger_main(["compare", str(ledger)]) == 1
        assert "regression(s)" in capsys.readouterr().out

    def test_compare_needs_two_records(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        _append(ledger)
        assert runledger_main(["compare", str(ledger)]) == 2
        assert "need at least 2" in capsys.readouterr().err

    def test_compare_explicit_indices(self, tmp_path):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, counters={"c": 5.0})
        _append(ledger, counters={"c": 9.0})
        _append(ledger, counters={"c": 5.0})
        assert (
            runledger_main(
                ["compare", str(ledger), "--base", "0", "--current", "2"]
            )
            == 0
        )

    def test_trend_reports_and_flags(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        for v in (1.0, 1.0, 1.0, 10.0):
            _append(ledger, gauges={"t_seconds": v}, elapsed_seconds=v)
        assert runledger_main(["trend", str(ledger)]) == 1
        out = capsys.readouterr().out
        assert "t_seconds" in out
        assert "REGRESSED" in out

    def test_trend_stable_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        for _ in range(3):
            _append(ledger, gauges={"t_seconds": 1.0})
        assert runledger_main(["trend", str(ledger)]) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_trend_single_metric(self, tmp_path, capsys):
        ledger = tmp_path / "l.jsonl"
        _append(ledger, gauges={"a_seconds": 1.0, "b_seconds": 2.0})
        assert runledger_main(["trend", str(ledger), "--metric", "a_seconds"]) == 0
        out = capsys.readouterr().out
        assert "a_seconds" in out
        assert "b_seconds" not in out
