"""Regression tests for scripts/audit_run.py input handling."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"

_spec = importlib.util.spec_from_file_location(
    "scripts_audit_run", SCRIPTS / "audit_run.py"
)
audit_run_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(audit_run_mod)
sys.modules["scripts_audit_run"] = audit_run_mod


class TestInputHandling:
    def test_missing_table3_reports_cleanly(self, tmp_path, capsys):
        # Regression: this used to crash with a bare KeyError('table3').
        results = tmp_path / "results.json"
        results.write_text(json.dumps({"table2": [], "meta": {}}))
        assert audit_run_mod.main([str(results)]) == 2
        err = capsys.readouterr().err
        assert "no 'table3' section" in err
        assert "table2" in err  # names the keys that are present

    def test_non_dict_payload_reports_cleanly(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        results.write_text(json.dumps([1, 2, 3]))
        assert audit_run_mod.main([str(results)]) == 2
        assert "no 'table3' section" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert audit_run_mod.main([str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        results.write_text("{not json")
        assert audit_run_mod.main([str(results)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_empty_table3_prints_header_only(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        results.write_text(json.dumps({"table3": []}))
        assert audit_run_mod.main([str(results)]) == 0
        assert "circuit" in capsys.readouterr().out
