"""Tests for the command-line partitioner (python -m repro.tools.partition)."""

import json

import pytest

from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.netlist.io import save_circuit
from repro.timing.constraints import TimingConstraints
from repro.tools.files import timing_to_dict
from repro.tools.partition import main, parse_grid


@pytest.fixture
def circuit_file(tmp_path):
    spec = ClusteredCircuitSpec("cli", num_components=24, num_wires=70)
    circuit = generate_clustered_circuit(spec, seed=9)
    path = tmp_path / "circuit.json"
    save_circuit(circuit, path)
    return path, circuit


class TestParseGrid:
    def test_ok(self):
        assert parse_grid("4x4") == (4, 4)
        assert parse_grid("2X3") == (2, 3)

    def test_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_grid("4by4")


class TestMain:
    def test_qbp_run_writes_assignment(self, circuit_file, tmp_path, capsys):
        path, circuit = circuit_file
        out = tmp_path / "assignment.json"
        code = main(
            [
                str(path),
                "--grid",
                "2x2",
                "--solver",
                "qbp",
                "--iterations",
                "10",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["solver"] == "qbp"
        assert len(payload["assignment"]) == 24
        assert set(payload["assignment"].values()) <= {0, 1, 2, 3}
        assert "cost" in payload
        assert "feasible" in capsys.readouterr().out

    def test_multistart_parallel_matches_serial(self, circuit_file, tmp_path, capsys):
        path, _ = circuit_file

        def run(workers, out_name):
            out = tmp_path / out_name
            args = [
                str(path), "--grid", "2x2", "--iterations", "5",
                "--restarts", "3", "--seed", "1", "--output", str(out),
            ]
            if workers is not None:
                args += ["--workers", str(workers)]
            assert main(args) == 0
            return json.loads(out.read_text())

        serial = run(1, "serial.json")
        parallel = run(2, "parallel.json")
        assert serial["assignment"] == parallel["assignment"]
        assert serial["cost"] == parallel["cost"]

    def test_checkpoint_with_restarts_rejected(self, circuit_file, tmp_path, capsys):
        path, _ = circuit_file
        with pytest.raises(SystemExit):
            main(
                [
                    str(path), "--restarts", "2",
                    "--checkpoint", str(tmp_path / "c.json"),
                ]
            )

    def test_bad_workers_rejected(self, circuit_file, capsys):
        path, _ = circuit_file
        with pytest.raises(SystemExit):
            main([str(path), "--workers", "0"])

    @pytest.mark.parametrize("solver", ["gfm", "gkl"])
    def test_baseline_solvers(self, circuit_file, solver, capsys):
        path, _ = circuit_file
        code = main([str(path), "--grid", "2x2", "--solver", solver])
        assert code == 0
        assert solver in capsys.readouterr().out

    def test_report_flag(self, circuit_file, capsys):
        path, _ = circuit_file
        code = main([str(path), "--grid", "2x2", "--solver", "gfm", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "partition utilisation" in out

    def test_with_timing_file(self, circuit_file, tmp_path, capsys):
        path, circuit = circuit_file
        tc = TimingConstraints(circuit.num_components)
        tc.add(0, 1, 2.0, symmetric=True)
        timing_path = tmp_path / "timing.json"
        timing_path.write_text(json.dumps(timing_to_dict(tc)))
        code = main(
            [
                str(path),
                "--grid",
                "2x2",
                "--timing",
                str(timing_path),
                "--solver",
                "qbp",
                "--iterations",
                "5",
            ]
        )
        assert code == 0
        assert "feasible" in capsys.readouterr().out

    def test_explicit_capacity(self, circuit_file):
        path, circuit = circuit_file
        # Generous explicit capacity: must succeed.
        code = main(
            [str(path), "--grid", "1x2", "--capacity", str(circuit.total_size()),
             "--solver", "gfm"]
        )
        assert code == 0
