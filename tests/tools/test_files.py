"""Tests for repro.tools.files (tool file formats)."""

import pytest

from repro.core.assignment import Assignment
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.netlist.io import save_circuit
from repro.netlist.parsers import save_edge_list
from repro.timing.constraints import TimingConstraints
from repro.tools.files import (
    assignment_from_dict,
    assignment_to_dict,
    load_any_circuit,
    timing_from_dict,
    timing_to_dict,
)


@pytest.fixture
def circuit():
    spec = ClusteredCircuitSpec("t", num_components=12, num_wires=30)
    return generate_clustered_circuit(spec, seed=3)


class TestLoadAnyCircuit:
    def test_json(self, circuit, tmp_path):
        path = tmp_path / "c.json"
        save_circuit(circuit, path)
        restored = load_any_circuit(path)
        assert restored.num_components == 12

    def test_wires(self, circuit, tmp_path):
        path = tmp_path / "c.wires"
        save_edge_list(circuit, path)
        restored = load_any_circuit(path)
        assert restored.num_wires == circuit.num_wires

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            load_any_circuit(tmp_path / "c.blif")


class TestTimingRoundTrip:
    def test_roundtrip(self):
        tc = TimingConstraints(5)
        tc.add(0, 1, 2.0, symmetric=True)
        tc.add(3, 4, 1.5)
        restored = timing_from_dict(timing_to_dict(tc))
        assert list(restored.items()) == list(tc.items())
        assert restored.num_components == 5

    def test_missing_count_rejected(self):
        with pytest.raises(ValueError, match="num_components"):
            timing_from_dict({"constraints": []})

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            timing_from_dict({"num_components": 3, "constraints": [[0, 1]]})


class TestAssignmentRoundTrip:
    def test_roundtrip(self, circuit):
        a = Assignment([j % 4 for j in range(12)], 4)
        restored = assignment_from_dict(assignment_to_dict(a, circuit), circuit)
        assert restored == a

    def test_names_used_as_keys(self, circuit):
        a = Assignment([0] * 12, 4)
        doc = assignment_to_dict(a, circuit)
        assert "u0" in doc["assignment"]

    def test_missing_component_rejected(self, circuit):
        doc = {"num_partitions": 4, "assignment": {"u0": 1}}
        with pytest.raises(ValueError, match="misses"):
            assignment_from_dict(doc, circuit)

    def test_missing_fields_rejected(self, circuit):
        with pytest.raises(ValueError):
            assignment_from_dict({"num_partitions": 4}, circuit)
        with pytest.raises(ValueError):
            assignment_from_dict({"assignment": {}}, circuit)
