"""Tests for repro.tools.traceview and scripts/check_trace.py."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs.events import (
    CheckpointEvent,
    FallbackEvent,
    IterationEvent,
    RestartEvent,
    event_to_dict,
)
from repro.tools.traceview import (
    aggregate_spans,
    flame_tree,
    parse_collapsed,
    render_flame,
    load_trace,
    main as traceview_main,
    render_checkpoints,
    render_convergence,
    render_fallbacks,
    render_restarts,
    render_span_summary,
    self_times,
    span_coverage,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_check_trace():
    spec = importlib.util.spec_from_file_location(
        "check_trace", REPO_ROOT / "scripts" / "check_trace.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_trace_mod = _load_check_trace()


def _span(name, span_id, parent=None, start=0.0, wall=1.0, cpu=0.5):
    return {
        "type": "span", "schema": 1, "name": name, "id": span_id,
        "parent": parent, "start": start, "wall": wall, "cpu": cpu, "attrs": {},
    }


def _write_trace(path, records):
    path.write_text("".join(json.dumps(r, sort_keys=True) + "\n" for r in records))


@pytest.fixture
def sample_records():
    return [
        _span("partition", 1, None, start=0.0, wall=4.0),
        _span("qbp.solve", 2, 1, start=0.5, wall=3.0),
        _span("gap.mthg", 3, 2, start=1.0, wall=1.0),
        _span("gap.mthg", 4, 2, start=2.0, wall=1.0),
        event_to_dict(IterationEvent(solver="qbp", iteration=1, cost=10.0,
                                     best_cost=10.0, improved=True)),
        event_to_dict(IterationEvent(solver="qbp", iteration=2, cost=8.0,
                                     best_cost=8.0, improved=True)),
        event_to_dict(RestartEvent(solver="qbp", index=0, restarts=2, best_cost=8.0)),
        event_to_dict(FallbackEvent(ladder="gap", rung="gap.trust", try_index=0,
                                    status="error", elapsed_seconds=0.01,
                                    error="boom")),
        event_to_dict(CheckpointEvent(label="c", iteration=2, path="x.json",
                                      bytes=256)),
    ]


class TestAnalysis:
    def test_self_time_subtracts_direct_children(self, sample_records, tmp_path):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, sample_records)
        spans, events = load_trace(trace)
        assert len(spans) == 4 and len(events) == 5
        selfs = self_times(spans)
        assert selfs[1] == pytest.approx(1.0)  # 4.0 - 3.0 (qbp.solve)
        assert selfs[2] == pytest.approx(1.0)  # 3.0 - 2 * 1.0 (gap.mthg)
        assert selfs[3] == pytest.approx(1.0)

    def test_aggregate_groups_by_name(self, sample_records):
        spans = [r for r in sample_records if r["type"] == "span"]
        groups = {g["name"]: g for g in aggregate_spans(spans)}
        assert groups["gap.mthg"]["calls"] == 2
        assert groups["gap.mthg"]["wall"] == pytest.approx(2.0)

    def test_coverage_from_root_spans(self, sample_records):
        spans = [r for r in sample_records if r["type"] == "span"]
        # One root span of wall 4.0 over a [0.0, 4.0] extent: full cover.
        assert span_coverage(spans) == pytest.approx(1.0)

    def test_coverage_none_without_spans(self):
        assert span_coverage([]) is None


class TestRendering:
    def test_span_summary_mentions_coverage(self, sample_records):
        spans = [r for r in sample_records if r["type"] == "span"]
        text = render_span_summary(spans, top=10)
        assert "span coverage: 100.0%" in text
        assert "gap.mthg" in text

    def test_convergence_table(self, sample_records):
        events = [r for r in sample_records if r["type"] == "event"]
        text = render_convergence(events)
        assert "qbp" in text
        assert "2" in text  # two iterations

    def test_fallback_audit_lists_error(self, sample_records):
        events = [r for r in sample_records if r["type"] == "event"]
        text = render_fallbacks(events)
        assert "gap.trust" in text and "boom" in text

    def test_checkpoint_and_restart_summaries(self, sample_records):
        events = [r for r in sample_records if r["type"] == "event"]
        assert "256 bytes" in render_checkpoints(events)
        assert "1/2" in render_restarts(events)


class TestCli:
    def test_renders_all_sections(self, sample_records, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, sample_records)
        assert traceview_main([str(trace)]) == 0
        out = capsys.readouterr().out
        for needle in ("span coverage", "convergence", "fallbacks", "checkpoint"):
            assert needle in out

    def test_json_mode(self, sample_records, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, sample_records)
        assert traceview_main([str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["coverage"] == pytest.approx(1.0)
        assert payload["events"]["iterations"] == 2

    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"type": "mystery"}\n')
        assert traceview_main([str(trace)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheckTrace:
    def test_valid_trace_passes(self, sample_records, tmp_path):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, sample_records)
        assert check_trace_mod.check_trace(trace, min_spans=4, min_events=5) == []
        assert check_trace_mod.main([str(trace), "--require-span", "partition"]) == 0

    def test_missing_required_span_fails(self, sample_records, tmp_path):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, sample_records)
        problems = check_trace_mod.check_trace(trace, require_spans=["nope"])
        assert problems == ["required span 'nope' not present"]
        assert check_trace_mod.main([str(trace), "--require-span", "nope"]) == 1

    def test_schema_violation_reported_with_line_number(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"not": "a span"}\n')
        problems = check_trace_mod.check_trace(trace)
        assert any(p.startswith("line 1:") for p in problems)

    def test_unreadable_input_exits_2(self, tmp_path):
        assert check_trace_mod.main([str(tmp_path / "missing.jsonl")]) == 2

class TestMetaRecords:
    def test_load_trace_skips_meta_header(self, sample_records, tmp_path):
        trace = tmp_path / "t.jsonl"
        meta = {"type": "meta", "schema": 1, "epoch_unix": 1700000000.0,
                "clock": "perf_counter"}
        _write_trace(trace, [meta] + sample_records)
        spans, events = load_trace(trace)
        assert len(spans) == 4
        assert all(e["type"] == "event" for e in events)

    def test_check_trace_counts_meta_as_neither(self, sample_records, tmp_path):
        trace = tmp_path / "t.jsonl"
        meta = {"type": "meta", "schema": 1, "epoch_unix": 1700000000.0}
        _write_trace(trace, [meta] + sample_records)
        assert check_trace_mod.check_trace(trace, min_spans=4, min_events=5) == []
        # min_events just above the real count proves meta was not counted.
        problems = check_trace_mod.check_trace(trace, min_events=len(sample_records) - 3)
        assert problems


class TestFlame:
    def _write_profile(self, path):
        path.write_text(
            "repro:main;repro:solve;repro:eta 60\n"
            "repro:main;repro:solve;repro:gap 30\n"
            "repro:main;repro:io 10\n"
        )

    def test_parse_collapsed(self, tmp_path):
        prof = tmp_path / "p.txt"
        self._write_profile(prof)
        counts = parse_collapsed(prof)
        assert counts[("repro:main", "repro:solve", "repro:eta")] == 60
        assert sum(counts.values()) == 100

    def test_parse_collapsed_rejects_malformed(self, tmp_path):
        prof = tmp_path / "p.txt"
        prof.write_text("no-count-here\n")
        with pytest.raises(ValueError, match="p.txt:1"):
            parse_collapsed(prof)

    def test_parse_collapsed_merges_duplicate_stacks(self, tmp_path):
        prof = tmp_path / "p.txt"
        prof.write_text("a:f;b:g 2\na:f;b:g 3\n")
        assert parse_collapsed(prof) == {("a:f", "b:g"): 5}

    def test_flame_tree_counts_are_inclusive(self):
        tree = flame_tree({("a", "b"): 3, ("a", "c"): 1})
        assert tree["count"] == 4
        assert tree["children"]["a"]["count"] == 4
        assert tree["children"]["a"]["children"]["b"]["count"] == 3

    def test_render_orders_hottest_first(self, tmp_path):
        prof = tmp_path / "p.txt"
        self._write_profile(prof)
        text = render_flame(parse_collapsed(prof))
        lines = text.splitlines()
        assert "100 samples" in lines[0]
        assert lines[1].startswith("repro:main")
        solve = next(i for i, l in enumerate(lines) if "repro:solve" in l)
        io_line = next(i for i, l in enumerate(lines) if "repro:io" in l)
        assert solve < io_line
        assert "60.0%" in text

    def test_render_min_percent_hides_cold_branches(self, tmp_path):
        prof = tmp_path / "p.txt"
        self._write_profile(prof)
        text = render_flame(parse_collapsed(prof), min_percent=20.0)
        assert "repro:io" not in text

    def test_render_depth_limit(self, tmp_path):
        prof = tmp_path / "p.txt"
        self._write_profile(prof)
        text = render_flame(parse_collapsed(prof), max_depth=1)
        assert "repro:solve" not in text
        assert "repro:main" in text

    def test_render_empty_profile(self):
        assert render_flame({}) == "no samples in profile"

    def test_cli_subcommand(self, tmp_path, capsys):
        prof = tmp_path / "p.txt"
        self._write_profile(prof)
        assert traceview_main(["flame", str(prof)]) == 0
        assert "repro:solve" in capsys.readouterr().out

    def test_cli_out_file(self, tmp_path, capsys):
        prof = tmp_path / "p.txt"
        self._write_profile(prof)
        out = tmp_path / "flame.txt"
        assert traceview_main(["flame", str(prof), "--out", str(out)]) == 0
        assert "repro:main" in out.read_text()

    def test_cli_missing_profile_exits_2(self, tmp_path, capsys):
        assert traceview_main(["flame", str(tmp_path / "absent.txt")]) == 2
        assert "error:" in capsys.readouterr().err
