"""The benchmark regression gate (scripts/check_bench.py)."""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"

_spec = importlib.util.spec_from_file_location(
    "scripts_check_bench", SCRIPTS / "check_bench.py"
)
check_bench_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_mod)
sys.modules["scripts_check_bench"] = check_bench_mod


@pytest.fixture
def snapshot():
    return {
        "format": "metrics-snapshot-v1",
        "counters": {"solver.iterations": 120.0, "solver.passes": 16.0},
        "gauges": {
            "harness.qbp_seconds": 0.5,
            "harness.gfm_seconds": 0.2,
            "last.cost": 442.0,
        },
        "histograms": {},
    }


class TestCheckFunction:
    def test_identical_snapshots_pass(self, snapshot):
        assert check_bench_mod.check_bench(snapshot, snapshot) == []

    def test_counter_drift_fails(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["counters"]["solver.iterations"] = 240.0
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("solver.iterations" in p for p in problems)

    def test_counter_drift_within_tolerance_passes(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["counters"]["solver.iterations"] = 126.0  # +5%
        assert (
            check_bench_mod.check_bench(current, snapshot, counter_tolerance=0.10)
            == []
        )

    def test_missing_counter_fails(self, snapshot):
        current = copy.deepcopy(snapshot)
        del current["counters"]["solver.passes"]
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("missing from run" in p for p in problems)

    def test_new_counter_is_not_a_failure(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["counters"]["pool.task_failures"] = 1.0
        assert check_bench_mod.check_bench(current, snapshot) == []

    def test_time_gauge_within_ratio_passes(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["gauges"]["harness.qbp_seconds"] = 4.0  # 8x of 0.5s, under 10x
        assert check_bench_mod.check_bench(current, snapshot) == []

    def test_time_gauge_blowup_fails(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["gauges"]["harness.qbp_seconds"] = 50.0  # 100x
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("harness.qbp_seconds" in p for p in problems)

    def test_speedup_beyond_ratio_also_fails(self, snapshot):
        # A 100x "speedup" means the workload silently stopped running.
        current = copy.deepcopy(snapshot)
        current["gauges"]["harness.qbp_seconds"] = 0.005
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("harness.qbp_seconds" in p for p in problems)

    def test_non_time_gauges_ignored(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["gauges"]["last.cost"] = 9999.0
        assert check_bench_mod.check_bench(current, snapshot) == []


class TestCli:
    def write(self, path: Path, payload) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_passing_run_exits_zero(self, tmp_path, snapshot):
        current = self.write(tmp_path / "current.json", snapshot)
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main([str(current), "--baseline", str(baseline)]) == 0
        )

    def test_drift_exits_one(self, tmp_path, snapshot):
        drifted = copy.deepcopy(snapshot)
        drifted["counters"]["solver.iterations"] = 1.0
        current = self.write(tmp_path / "current.json", drifted)
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main([str(current), "--baseline", str(baseline)]) == 1
        )

    def test_unreadable_input_exits_two(self, tmp_path, snapshot):
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main(
                [str(tmp_path / "missing.json"), "--baseline", str(baseline)]
            )
            == 2
        )

    def test_wrong_format_exits_two(self, tmp_path, snapshot):
        bad = self.write(tmp_path / "bad.json", {"format": "other-v1"})
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert check_bench_mod.main([str(bad), "--baseline", str(baseline)]) == 2

    def test_update_writes_baseline(self, tmp_path, snapshot):
        current = self.write(tmp_path / "current.json", snapshot)
        baseline = tmp_path / "sub" / "baseline.json"
        assert (
            check_bench_mod.main(
                [str(current), "--baseline", str(baseline), "--update"]
            )
            == 0
        )
        assert json.loads(baseline.read_text()) == snapshot

    def test_committed_baseline_is_valid(self):
        baseline = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / "eval-small.json"
        )
        payload = check_bench_mod.load_snapshot(baseline)
        assert payload["counters"]["solver.iterations"] > 0
        assert check_bench_mod.check_bench(payload, payload) == []

def scaling_cell(n, k, batched_s=0.01, scalar_s=0.05, **extra):
    counters = {
        "delta.moves": 8.0,
        "delta.row_refreshes": 24.0,
        "delta.full_rebuilds": 1.0,
    }
    cell = {
        "n": n,
        "k": k,
        "moves": 8,
        "kernels": {
            "batched": {"seconds": batched_s, "counters": dict(counters)},
            "scalar": {"seconds": scalar_s, "counters": dict(counters)},
        },
        "speedup": scalar_s / batched_s,
    }
    cell.update(extra)
    return cell


@pytest.fixture
def scaling():
    return {
        "format": "bench-scaling-v1",
        "sizes": [64, 256],
        "partitions": [2],
        "moves": 8,
        "cells": [scaling_cell(64, 2), scaling_cell(256, 2)],
    }


class TestScalingGate:
    def test_identical_documents_pass(self, scaling):
        assert check_bench_mod.check_scaling(scaling, scaling) == []

    def test_counter_drift_fails_with_both_values(self, scaling):
        current = copy.deepcopy(scaling)
        current["cells"][0]["kernels"]["batched"]["counters"][
            "delta.row_refreshes"
        ] = 99.0
        problems = check_bench_mod.check_scaling(current, scaling)
        assert len(problems) == 1
        assert "delta.row_refreshes" in problems[0]
        assert "24" in problems[0] and "99" in problems[0]

    def test_missing_cell_fails(self, scaling):
        current = copy.deepcopy(scaling)
        del current["cells"][1]
        problems = check_bench_mod.check_scaling(current, scaling)
        assert any("n=256" in p and "missing from run" in p for p in problems)

    def test_extra_cell_is_not_a_failure(self, scaling):
        current = copy.deepcopy(scaling)
        current["cells"].append(scaling_cell(1024, 2))
        assert check_bench_mod.check_scaling(current, scaling) == []

    def test_wall_time_blowup_fails(self, scaling):
        current = copy.deepcopy(scaling)
        current["cells"][0]["kernels"]["scalar"]["seconds"] = 5.0  # 100x
        problems = check_bench_mod.check_scaling(current, scaling)
        assert any("kernel scalar" in p and "100.0x" in p for p in problems)

    def test_speedup_below_committed_floor_fails(self, scaling):
        baseline = copy.deepcopy(scaling)
        baseline["cells"][0]["min_speedup"] = 2.0
        current = copy.deepcopy(scaling)
        current["cells"][0]["kernels"]["batched"]["seconds"] = 0.04
        current["cells"][0]["speedup"] = 1.25
        problems = check_bench_mod.check_scaling(current, baseline)
        assert len(problems) == 1
        assert "speedup" in problems[0]
        assert "1.25x" in problems[0] and "2x" in problems[0]

    def test_batched_slower_than_scalar_fails_by_default(self, scaling):
        # No explicit floor: min_speedup defaults to 1 - batched must
        # never lose to the reference kernel.
        current = copy.deepcopy(scaling)
        current["cells"][0]["kernels"]["batched"]["seconds"] = 0.1
        current["cells"][0]["speedup"] = 0.5
        problems = check_bench_mod.check_scaling(current, scaling)
        assert any("speedup" in p and "0.50x" in p for p in problems)

    def test_cli_gates_scaling_documents(self, tmp_path, scaling):
        write = TestCli().write
        current = write(tmp_path / "current.json", scaling)
        baseline = write(tmp_path / "baseline.json", scaling)
        assert (
            check_bench_mod.main([str(current), "--baseline", str(baseline)]) == 0
        )

    def test_cli_rejects_scaling_against_ledger(self, tmp_path, scaling):
        write = TestCli().write
        current = write(tmp_path / "current.json", scaling)
        with pytest.raises(SystemExit):
            check_bench_mod.main([str(current), "--ledger", "ledger.jsonl"])

    def test_cli_rejects_format_mismatch(self, tmp_path, scaling, snapshot):
        write = TestCli().write
        current = write(tmp_path / "current.json", scaling)
        baseline = write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main([str(current), "--baseline", str(baseline)]) == 2
        )

    def test_update_preserves_speedup_floors(self, tmp_path, scaling):
        write = TestCli().write
        baseline_payload = copy.deepcopy(scaling)
        baseline_payload["cells"][1]["min_speedup"] = 2.0
        baseline = write(tmp_path / "baseline.json", baseline_payload)
        current_payload = copy.deepcopy(scaling)
        current_payload["cells"][0]["kernels"]["batched"]["seconds"] = 0.002
        current = write(tmp_path / "current.json", current_payload)
        assert (
            check_bench_mod.main(
                [str(current), "--baseline", str(baseline), "--update"]
            )
            == 0
        )
        updated = json.loads(baseline.read_text())
        floors = {
            (c["n"], c["k"]): c["min_speedup"] for c in updated["cells"]
        }
        assert floors == {(64, 2): 1.0, (256, 2): 2.0}
        assert (
            updated["cells"][0]["kernels"]["batched"]["seconds"] == 0.002
        )

    def test_committed_scaling_baseline_is_valid(self):
        baseline = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / "scaling.json"
        )
        payload = check_bench_mod.load_snapshot(baseline)
        assert check_bench_mod.check_scaling(payload, payload) == []
        floors = {
            (c["n"], c["k"]): c["min_speedup"] for c in payload["cells"]
        }
        # The acceptance floor: batched at least 2x scalar at N=1024.
        assert floors[(1024, 2)] >= 2.0
        assert floors[(1024, 8)] >= 2.0
        for cell in payload["cells"]:
            assert cell["speedup"] >= cell["min_speedup"]


class TestLedgerGate:
    def _append(self, path, snapshot):
        from repro.obs.ledger import append_record, make_record, run_manifest

        append_record(
            path,
            make_record(
                manifest=run_manifest(label="bench", seed=0, config={}),
                metrics=snapshot,
            ),
        )

    def write(self, path: Path, payload) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_matching_run_passes_against_window(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        for _ in range(3):
            self._append(ledger, snapshot)
        current = self.write(tmp_path / "current.json", snapshot)
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 0

    def test_counter_perturbation_fails_against_window(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        self._append(ledger, snapshot)
        drifted = copy.deepcopy(snapshot)
        drifted["counters"]["solver.iterations"] += 1.0
        current = self.write(tmp_path / "current.json", drifted)
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 1

    def test_window_median_absorbs_one_slow_record(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        slow = copy.deepcopy(snapshot)
        slow["gauges"]["harness.qbp_seconds"] = 500.0  # one outlier machine
        self._append(ledger, snapshot)
        self._append(ledger, slow)
        self._append(ledger, snapshot)
        current = self.write(tmp_path / "current.json", snapshot)
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 0

    def test_window_flag_limits_history(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        old = copy.deepcopy(snapshot)
        old["counters"]["solver.iterations"] = 999.0
        self._append(ledger, old)
        for _ in range(2):
            self._append(ledger, snapshot)
        current = self.write(tmp_path / "current.json", snapshot)
        assert (
            check_bench_mod.main(
                [str(current), "--ledger", str(ledger), "--window", "2"]
            )
            == 0
        )

    def test_missing_ledger_fails_with_one_line_error(
        self, tmp_path, snapshot, capsys
    ):
        current = self.write(tmp_path / "current.json", snapshot)
        ledger = tmp_path / "absent.jsonl"
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert len(err.strip().splitlines()) == 1

    def test_empty_ledger_fails_with_one_line_error(
        self, tmp_path, snapshot, capsys
    ):
        current = self.write(tmp_path / "current.json", snapshot)
        ledger = tmp_path / "empty.jsonl"
        ledger.write_text("")
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 2
        err = capsys.readouterr().err
        assert "no run-ledger-v1 records" in err
        assert len(err.strip().splitlines()) == 1

    def test_baseline_and_ledger_are_exclusive(self, tmp_path, snapshot):
        current = self.write(tmp_path / "current.json", snapshot)
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        with pytest.raises(SystemExit):
            check_bench_mod.main(
                [str(current), "--baseline", str(baseline), "--ledger", "x"]
            )
        with pytest.raises(SystemExit):
            check_bench_mod.main([str(current)])
