"""The benchmark regression gate (scripts/check_bench.py)."""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"

_spec = importlib.util.spec_from_file_location(
    "scripts_check_bench", SCRIPTS / "check_bench.py"
)
check_bench_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_mod)
sys.modules["scripts_check_bench"] = check_bench_mod


@pytest.fixture
def snapshot():
    return {
        "format": "metrics-snapshot-v1",
        "counters": {"solver.iterations": 120.0, "solver.passes": 16.0},
        "gauges": {
            "harness.qbp_seconds": 0.5,
            "harness.gfm_seconds": 0.2,
            "last.cost": 442.0,
        },
        "histograms": {},
    }


class TestCheckFunction:
    def test_identical_snapshots_pass(self, snapshot):
        assert check_bench_mod.check_bench(snapshot, snapshot) == []

    def test_counter_drift_fails(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["counters"]["solver.iterations"] = 240.0
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("solver.iterations" in p for p in problems)

    def test_counter_drift_within_tolerance_passes(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["counters"]["solver.iterations"] = 126.0  # +5%
        assert (
            check_bench_mod.check_bench(current, snapshot, counter_tolerance=0.10)
            == []
        )

    def test_missing_counter_fails(self, snapshot):
        current = copy.deepcopy(snapshot)
        del current["counters"]["solver.passes"]
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("missing from run" in p for p in problems)

    def test_new_counter_is_not_a_failure(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["counters"]["pool.task_failures"] = 1.0
        assert check_bench_mod.check_bench(current, snapshot) == []

    def test_time_gauge_within_ratio_passes(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["gauges"]["harness.qbp_seconds"] = 4.0  # 8x of 0.5s, under 10x
        assert check_bench_mod.check_bench(current, snapshot) == []

    def test_time_gauge_blowup_fails(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["gauges"]["harness.qbp_seconds"] = 50.0  # 100x
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("harness.qbp_seconds" in p for p in problems)

    def test_speedup_beyond_ratio_also_fails(self, snapshot):
        # A 100x "speedup" means the workload silently stopped running.
        current = copy.deepcopy(snapshot)
        current["gauges"]["harness.qbp_seconds"] = 0.005
        problems = check_bench_mod.check_bench(current, snapshot)
        assert any("harness.qbp_seconds" in p for p in problems)

    def test_non_time_gauges_ignored(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["gauges"]["last.cost"] = 9999.0
        assert check_bench_mod.check_bench(current, snapshot) == []


class TestCli:
    def write(self, path: Path, payload) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_passing_run_exits_zero(self, tmp_path, snapshot):
        current = self.write(tmp_path / "current.json", snapshot)
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main([str(current), "--baseline", str(baseline)]) == 0
        )

    def test_drift_exits_one(self, tmp_path, snapshot):
        drifted = copy.deepcopy(snapshot)
        drifted["counters"]["solver.iterations"] = 1.0
        current = self.write(tmp_path / "current.json", drifted)
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main([str(current), "--baseline", str(baseline)]) == 1
        )

    def test_unreadable_input_exits_two(self, tmp_path, snapshot):
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert (
            check_bench_mod.main(
                [str(tmp_path / "missing.json"), "--baseline", str(baseline)]
            )
            == 2
        )

    def test_wrong_format_exits_two(self, tmp_path, snapshot):
        bad = self.write(tmp_path / "bad.json", {"format": "other-v1"})
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        assert check_bench_mod.main([str(bad), "--baseline", str(baseline)]) == 2

    def test_update_writes_baseline(self, tmp_path, snapshot):
        current = self.write(tmp_path / "current.json", snapshot)
        baseline = tmp_path / "sub" / "baseline.json"
        assert (
            check_bench_mod.main(
                [str(current), "--baseline", str(baseline), "--update"]
            )
            == 0
        )
        assert json.loads(baseline.read_text()) == snapshot

    def test_committed_baseline_is_valid(self):
        baseline = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / "eval-small.json"
        )
        payload = check_bench_mod.load_snapshot(baseline)
        assert payload["counters"]["solver.iterations"] > 0
        assert check_bench_mod.check_bench(payload, payload) == []

class TestLedgerGate:
    def _append(self, path, snapshot):
        from repro.obs.ledger import append_record, make_record, run_manifest

        append_record(
            path,
            make_record(
                manifest=run_manifest(label="bench", seed=0, config={}),
                metrics=snapshot,
            ),
        )

    def write(self, path: Path, payload) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_matching_run_passes_against_window(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        for _ in range(3):
            self._append(ledger, snapshot)
        current = self.write(tmp_path / "current.json", snapshot)
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 0

    def test_counter_perturbation_fails_against_window(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        self._append(ledger, snapshot)
        drifted = copy.deepcopy(snapshot)
        drifted["counters"]["solver.iterations"] += 1.0
        current = self.write(tmp_path / "current.json", drifted)
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 1

    def test_window_median_absorbs_one_slow_record(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        slow = copy.deepcopy(snapshot)
        slow["gauges"]["harness.qbp_seconds"] = 500.0  # one outlier machine
        self._append(ledger, snapshot)
        self._append(ledger, slow)
        self._append(ledger, snapshot)
        current = self.write(tmp_path / "current.json", snapshot)
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 0

    def test_window_flag_limits_history(self, tmp_path, snapshot):
        ledger = tmp_path / "ledger.jsonl"
        old = copy.deepcopy(snapshot)
        old["counters"]["solver.iterations"] = 999.0
        self._append(ledger, old)
        for _ in range(2):
            self._append(ledger, snapshot)
        current = self.write(tmp_path / "current.json", snapshot)
        assert (
            check_bench_mod.main(
                [str(current), "--ledger", str(ledger), "--window", "2"]
            )
            == 0
        )

    def test_missing_ledger_fails_with_one_line_error(
        self, tmp_path, snapshot, capsys
    ):
        current = self.write(tmp_path / "current.json", snapshot)
        ledger = tmp_path / "absent.jsonl"
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert len(err.strip().splitlines()) == 1

    def test_empty_ledger_fails_with_one_line_error(
        self, tmp_path, snapshot, capsys
    ):
        current = self.write(tmp_path / "current.json", snapshot)
        ledger = tmp_path / "empty.jsonl"
        ledger.write_text("")
        assert check_bench_mod.main([str(current), "--ledger", str(ledger)]) == 2
        err = capsys.readouterr().err
        assert "no run-ledger-v1 records" in err
        assert len(err.strip().splitlines()) == 1

    def test_baseline_and_ledger_are_exclusive(self, tmp_path, snapshot):
        current = self.write(tmp_path / "current.json", snapshot)
        baseline = self.write(tmp_path / "baseline.json", snapshot)
        with pytest.raises(SystemExit):
            check_bench_mod.main(
                [str(current), "--baseline", str(baseline), "--ledger", "x"]
            )
        with pytest.raises(SystemExit):
            check_bench_mod.main([str(current)])
