"""Chaos suite: inject each failure class, assert the exact degradation path.

Every test installs a task-scoped :class:`FaultPlan` (the same kind the
``REPRO_FAULT_PLAN`` CI profile expresses), runs a real solver or table
sweep through the self-healing :class:`WorkerPool`, and asserts

* the final answer is **bit-identical** to an undisturbed serial run
  (self-healing must not change results, only survive faults), and
* the typed event stream records the exact degradation path the
  injected fault was supposed to take (retry -> cure, kill -> retry,
  reject -> retry, quarantine).

See ``docs/ROBUSTNESS.md`` for the failure taxonomy.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import run_table
from repro.obs.telemetry import Telemetry, use_telemetry
from repro.parallel.pool import supports_process_pool
from repro.parallel.retry import RetryPolicy
from repro.runtime.budget import Budget
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    inject_faults,
    parse_fault_plan,
    plan_from_env,
)
from repro.solvers.burkard import solve_qbp_multistart

needs_fork = pytest.mark.skipif(
    not supports_process_pool(), reason="platform lacks fork"
)

QUICK_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)

# The CI chaos profile: all four worker fault sites on the first two
# tasks, so any batch with >= 2 tasks exercises every failure class.
CHAOS_PROFILE = (
    "worker.retry:fail:tasks=0:attempts=0;"
    "worker.crash:fail:tasks=0:attempts=1;"
    "worker.hang:slow:tasks=1:seconds=30:attempts=0;"
    "worker.corrupt:fail:tasks=1:attempts=1"
)


def result_key(result):
    return (
        result.cost,
        result.best_feasible_cost,
        result.penalized_cost,
        result.assignment.part.tolist(),
    )


def events_of(tel, kind):
    return [e for e in tel.events() if getattr(e, "kind", "") == kind]


class TestFaultPlanGrammar:
    def test_fail_clause(self):
        plan = parse_fault_plan("worker.crash:fail:tasks=2")
        assert plan.fork_safe
        assert plan.would_fire_task("worker.crash", 2, 0) == "fail"
        assert plan.would_fire_task("worker.crash", 1, 0) is None
        assert plan.would_fire_task("worker.crash", 2, 1) is None  # attempt 0 only

    def test_slow_clause_with_options(self):
        plan = parse_fault_plan("worker.hang:slow:tasks=1,3:seconds=5:attempts=0,1")
        assert plan.would_fire_task("worker.hang", 3, 1) == "slow"
        assert plan.would_fire_task("worker.hang", 2, 0) is None

    def test_every_attempt_wildcard(self):
        plan = parse_fault_plan("worker.retry:fail:tasks=0:attempts=*")
        assert plan.would_fire_task("worker.retry", 0, 7) == "fail"

    def test_multiple_clauses(self):
        plan = parse_fault_plan(CHAOS_PROFILE)
        assert plan.fork_safe
        assert plan.would_fire_task("worker.retry", 0, 0) == "fail"
        assert plan.would_fire_task("worker.crash", 0, 1) == "fail"
        assert plan.would_fire_task("worker.hang", 1, 0) == "slow"
        assert plan.would_fire_task("worker.corrupt", 1, 1) == "fail"

    def test_empty_clauses_skipped(self):
        plan = parse_fault_plan("; worker.crash:fail:tasks=0 ;;")
        assert plan.would_fire_task("worker.crash", 0, 0) == "fail"

    @pytest.mark.parametrize(
        "spec",
        [
            "worker.crash",  # no kind
            "worker.crash:fail",  # no tasks=
            "worker.crash:fail:tasks",  # not key=value
            "worker.crash:explode:tasks=0",  # unknown kind
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_plan(spec)


class TestEnvProfile:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert plan_from_env() is None

    def test_blank_means_no_plan(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "   ")
        assert plan_from_env() is None

    def test_profile_parses(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, CHAOS_PROFILE)
        plan = plan_from_env()
        assert plan is not None and plan.fork_safe
        assert plan.would_fire_task("worker.hang", 1, 0) == "slow"

    def test_malformed_profile_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "nope")
        with pytest.raises(ValueError):
            plan_from_env()


@needs_fork
class TestMultistartChaos:
    """All four failure classes through a real multistart fan-out."""

    RUN = dict(restarts=4, iterations=8, seed=11)

    def test_full_profile_heals_to_identical_result(self, small_problem):
        reference = solve_qbp_multistart(small_problem, workers=1, **self.RUN)
        tel = Telemetry.enabled_default()
        plan = parse_fault_plan(CHAOS_PROFILE)
        with inject_faults(plan):
            with use_telemetry(tel):
                survived = solve_qbp_multistart(
                    small_problem,
                    workers=2,
                    task_timeout=1.0,
                    retry=QUICK_RETRY,
                    **self.RUN,
                )
        assert result_key(survived) == result_key(reference)

        # Exact degradation paths, per injected fault:
        retries = events_of(tel, "retry")
        retried = {(e.task, e.attempt) for e in retries}
        # task 0: error on attempt 0, crash on attempt 1, cured on 2.
        assert (0, 0) in retried and (0, 1) in retried
        # task 1: hang killed on attempt 0, corrupt rejected on attempt 1.
        assert (1, 0) in retried and (1, 1) in retried
        kinds = {(e.task, e.attempt): e.failure_kind for e in retries}
        assert kinds[(0, 0)] == "error"
        assert kinds[(0, 1)] == "crash"
        assert kinds[(1, 0)] == "hang"
        assert kinds[(1, 1)] == "integrity"
        rejects = events_of(tel, "integrity")
        assert [(e.task, e.attempt) for e in rejects] == [(1, 1)]
        assert events_of(tel, "quarantine") == []  # everything healed
        counters = tel.metrics_snapshot()["counters"]
        assert counters["pool.task_retries"] == 4.0
        assert counters["pool.task_hangs"] == 1.0
        assert counters["pool.integrity_rejects"] == 1.0
        # The worker-side fault audit made it back to the parent plan.
        assert ("worker.retry", 0, "fail") in plan.injected
        assert ("worker.crash", 0, "fail") in plan.injected
        assert ("worker.hang", 1, "slow") in plan.injected

    def test_unhealable_task_is_quarantined(self, small_problem):
        # Failing every attempt exhausts the policy: the task lands in
        # quarantine with its payload digest, the rest still produce the
        # reference best when it does not come from the poisoned restart.
        tel = Telemetry.enabled_default()
        plan = parse_fault_plan("worker.retry:fail:tasks=3:attempts=*")
        with inject_faults(plan):
            with use_telemetry(tel):
                survived = solve_qbp_multistart(
                    small_problem, workers=2, retry=QUICK_RETRY, **self.RUN
                )
        assert survived.penalized_cost is not None
        quarantined = events_of(tel, "quarantine")
        assert [e.task for e in quarantined] == [3]
        assert quarantined[0].attempts == QUICK_RETRY.max_attempts
        assert len(quarantined[0].payload_digest) == 16


@needs_fork
class TestTableChaos:
    """Failure classes through a real Table II sweep with checkpointing."""

    RUN = dict(scale=0.1, qbp_iterations=8, circuits=["ckta", "cktb"], seed=0)

    @staticmethod
    def fields(row):
        return (
            row.name,
            row.start_cost,
            row.qbp_cost,
            row.gfm_cost,
            row.gkl_cost,
            row.all_feasible,
            row.stop_reason,
        )

    def test_corrupt_and_crash_heal_to_identical_rows(self):
        reference = run_table(2, workers=1, **self.RUN)
        tel = Telemetry.enabled_default()
        plan = parse_fault_plan(
            "worker.corrupt:fail:tasks=0:attempts=0;"
            "worker.crash:fail:tasks=1:attempts=0"
        )
        with inject_faults(plan):
            with use_telemetry(tel):
                rows = run_table(2, workers=2, retry=QUICK_RETRY, **self.RUN)
        assert [self.fields(r) for r in rows] == [self.fields(r) for r in reference]
        rejects = events_of(tel, "integrity")
        assert [(e.task, e.attempt) for e in rejects] == [(0, 0)]
        assert "inconsistent" in rejects[0].reason
        retried = {(e.task, e.attempt, e.failure_kind) for e in events_of(tel, "retry")}
        assert (0, 0, "integrity") in retried
        assert (1, 0, "crash") in retried

    def test_exhausted_worker_falls_back_to_serial_recompute(self):
        # Quarantine does not lose the row: run_table retries the
        # circuit serially in-process, so the table still fills in.
        reference = run_table(2, workers=1, **self.RUN)
        plan = parse_fault_plan("worker.retry:fail:tasks=0:attempts=*")
        with inject_faults(plan):
            rows = run_table(
                2,
                workers=2,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
                **self.RUN,
            )
        assert [self.fields(r) for r in rows] == [self.fields(r) for r in reference]


class TestResumeAfterCancel:
    """Drain mid-sweep, then resume bit-identically from the checkpoint."""

    RUN = dict(scale=0.1, qbp_iterations=8, circuits=["ckta", "cktb"], seed=0)

    def test_cancelled_sweep_resumes_bit_identically(self, tmp_path):
        reference = run_table(2, workers=1, **self.RUN)

        # Cancel mid-first-circuit, the way a SIGTERM drain does (the
        # handler calls budget.cancel(); here the budget's own check
        # hook pulls the trigger deterministically).
        budget = Budget()
        checks = {"n": 0}

        def trip():
            checks["n"] += 1
            if checks["n"] == 40:
                budget.cancel()

        budget.on_check = trip
        interrupted = run_table(
            2, workers=1, budget=budget, checkpoint_dir=tmp_path, **self.RUN
        )
        assert len(interrupted) < len(reference) or any(
            r.stop_reason != "completed" for r in interrupted
        )

        resumed = run_table(2, workers=1, checkpoint_dir=tmp_path, **self.RUN)
        assert [TestTableChaos.fields(r) for r in resumed] == [
            TestTableChaos.fields(r) for r in reference
        ]
