"""Smoke tests for the example scripts.

``paper_example`` is executed outright (it is fast and asserts its own
invariants); the heavier examples are compile-checked and their main
entry points imported, which catches API drift without paying full
solver runtimes in the unit suite.  The benchmark/CI pipeline runs them
for real.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_SCRIPTS = sorted(EXAMPLES.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_SCRIPTS}
    assert {
        "quickstart.py",
        "paper_example.py",
        "mcm_repartition.py",
        "fpga_timing_partition.py",
        "qap_demo.py",
    } <= names


@pytest.mark.parametrize("script", ALL_SCRIPTS, ids=lambda p: p.name)
def test_example_compiles(script):
    py_compile.compile(str(script), doraise=True)


def test_paper_example_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "paper_example.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "exact optimum: cost 14" in proc.stdout
    assert "entry [(a,2), (b,3)] = 50" in proc.stdout


def test_fpga_example_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "fpga_timing_partition.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "feasible" in proc.stdout
