"""Golden equivalence: the engine refactor changed no solver output.

The committed ``data/golden_equivalence.json`` was captured by
``scripts/capture_golden.py`` *before* the solver/baseline stack moved
onto the shared engine layer (:mod:`repro.engine`).  These tests replay
exactly the same fixed-seed runs and assert bit-identical assignments
and costs - same seed, same assignment, same cost, to the last bit.

If one of these fails, the refactor changed numerical behaviour; that
is a bug unless the change is intentional, in which case re-run the
capture script and commit the new goldens with an explanation.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines.annealing import annealing_partition
from repro.baselines.gfm import gfm_partition
from repro.baselines.gkl import gkl_partition
from repro.eval.harness import shared_initial_solution
from repro.eval.workloads import build_workload
from repro.solvers.burkard import solve_qbp, solve_qbp_multistart

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_equivalence.json"

CASES = ("ckta-timing", "ckta-no-timing", "cktb-timing")


@pytest.fixture(scope="module")
def golden():
    payload = json.loads(GOLDEN_PATH.read_text())
    assert payload["format"] == "golden-equivalence-v1"
    return payload


@pytest.fixture(scope="module")
def replayed(golden):
    """One replay of every case, shared by the per-solver assertions."""
    params = golden["params"]
    out = {}
    for case in CASES:
        circuit, _, flavor = case.partition("-")
        workload = build_workload(circuit, scale=params["scale"])
        problem = (
            workload.problem if flavor == "timing" else workload.problem_no_timing
        )
        initial = shared_initial_solution(workload, seed=params["initial_seed"])
        out[case] = {"problem": problem, "initial": initial}
    return out


def _case(golden, replayed, name):
    return golden["cases"][name], replayed[name]


@pytest.mark.parametrize("case", CASES)
def test_shared_initial_is_identical(golden, replayed, case):
    expected, actual = _case(golden, replayed, case)
    assert actual["initial"].part.tolist() == expected["initial"]


@pytest.mark.parametrize("case", CASES)
def test_solve_qbp_is_bit_identical(golden, replayed, case):
    expected, actual = _case(golden, replayed, case)
    params = golden["params"]
    result = solve_qbp(
        actual["problem"],
        iterations=params["qbp_iterations"],
        initial=actual["initial"],
        seed=3,
    )
    assert result.assignment.part.tolist() == expected["qbp"]["part"]
    assert result.cost == expected["qbp"]["cost"]
    assert result.penalized_cost == expected["qbp"]["penalized_cost"]
    if expected["qbp"]["best_feasible_cost"] is None:
        assert result.best_feasible_assignment is None
    else:
        assert result.best_feasible_cost == expected["qbp"]["best_feasible_cost"]


@pytest.mark.parametrize("case", CASES)
def test_multistart_is_bit_identical(golden, replayed, case):
    expected, actual = _case(golden, replayed, case)
    params = golden["params"]
    result = solve_qbp_multistart(
        actual["problem"],
        restarts=params["multistart_restarts"],
        iterations=params["multistart_iterations"],
        seed=5,
    )
    assert result.assignment.part.tolist() == expected["multistart"]["part"]
    assert result.cost == expected["multistart"]["cost"]
    assert result.penalized_cost == expected["multistart"]["penalized_cost"]


@pytest.mark.parametrize("case", CASES)
def test_gfm_is_bit_identical(golden, replayed, case):
    expected, actual = _case(golden, replayed, case)
    result = gfm_partition(actual["problem"], actual["initial"])
    assert result.assignment.part.tolist() == expected["gfm"]["part"]
    assert result.cost == expected["gfm"]["cost"]


@pytest.mark.parametrize("case", CASES)
def test_gkl_is_bit_identical(golden, replayed, case):
    expected, actual = _case(golden, replayed, case)
    result = gkl_partition(actual["problem"], actual["initial"])
    assert result.assignment.part.tolist() == expected["gkl"]["part"]
    assert result.cost == expected["gkl"]["cost"]


@pytest.mark.parametrize("case", CASES)
def test_annealing_is_bit_identical(golden, replayed, case):
    expected, actual = _case(golden, replayed, case)
    result = annealing_partition(
        actual["problem"], actual["initial"], temperature_steps=8, seed=7
    )
    assert result.assignment.part.tolist() == expected["annealing"]["part"]
    assert result.cost == expected["annealing"]["cost"]


class TestPipelineReplaysGoldens:
    """The registry/pipeline dispatch path adds nothing to the numbers.

    Every golden case replayed through ``SolvePipeline`` must reproduce
    the direct-call goldens bit-identically - the adapters are pure
    plumbing.  The multistart replay also runs with a 2-process pool to
    pin the parallel path to the same bits.
    """

    @pytest.mark.parametrize("case", CASES)
    def test_qbp_via_pipeline_is_bit_identical(self, golden, replayed, case):
        from repro.pipeline import SolvePipeline

        expected, actual = _case(golden, replayed, case)
        params = golden["params"]
        run = SolvePipeline().run(
            "qbp",
            actual["problem"],
            config={"iterations": params["qbp_iterations"]},
            initial=actual["initial"],
            seed=3,
        )
        result = run.outcome
        assert result.assignment.part.tolist() == expected["qbp"]["part"]
        assert result.cost == expected["qbp"]["cost"]
        assert result.penalized_cost == expected["qbp"]["penalized_cost"]
        if expected["qbp"]["best_feasible_cost"] is None:
            assert result.best_feasible_assignment is None
        else:
            assert (
                result.best_feasible_cost == expected["qbp"]["best_feasible_cost"]
            )

    @pytest.mark.parametrize("workers", [None, 2])
    @pytest.mark.parametrize("case", CASES)
    def test_multistart_via_pipeline_is_bit_identical(
        self, golden, replayed, case, workers
    ):
        from repro.parallel.pool import supports_process_pool
        from repro.pipeline import SolvePipeline

        if workers == 2 and not supports_process_pool():
            pytest.skip("platform lacks fork")
        expected, actual = _case(golden, replayed, case)
        params = golden["params"]
        run = SolvePipeline(workers=workers).run(
            "qbp",
            actual["problem"],
            config={
                "restarts": params["multistart_restarts"],
                "iterations": params["multistart_iterations"],
            },
            seed=5,
        )
        result = run.outcome
        assert result.assignment.part.tolist() == expected["multistart"]["part"]
        assert result.cost == expected["multistart"]["cost"]
        assert result.penalized_cost == expected["multistart"]["penalized_cost"]

    @pytest.mark.parametrize("solver", ["gfm", "gkl"])
    @pytest.mark.parametrize("case", CASES)
    def test_baselines_via_pipeline_are_bit_identical(
        self, golden, replayed, case, solver
    ):
        from repro.pipeline import SolvePipeline

        expected, actual = _case(golden, replayed, case)
        run = SolvePipeline().run(
            solver, actual["problem"], initial=actual["initial"]
        )
        result = run.outcome
        assert result.assignment.part.tolist() == expected[solver]["part"]
        assert result.cost == expected[solver]["cost"]
