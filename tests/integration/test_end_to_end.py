"""Integration tests: the full pipeline, end to end.

These exercise the library exactly as the examples and the benchmark
harness do — generate, constrain, bootstrap, solve with all three
methods, audit — plus the paper's robustness claims (arbitrary initial
solutions) as cross-module behaviours no unit test covers.
"""

import numpy as np
import pytest

from repro.baselines import gfm_partition, gkl_partition
from repro.core import (
    Assignment,
    ObjectiveEvaluator,
    PartitioningProblem,
    check_feasibility,
)
from repro.eval.harness import run_circuit_experiment, shared_initial_solution
from repro.eval.workloads import build_workload
from repro.netlist import (
    ClusteredCircuitSpec,
    circuit_from_dict,
    circuit_to_dict,
    generate_clustered_circuit,
)
from repro.solvers import bootstrap_initial_solution, solve_qbp
from repro.timing import synthesize_feasible_constraints
from repro.topology import grid_topology


@pytest.fixture(scope="module")
def pipeline():
    """A mid-sized timing-constrained problem with a feasible start."""
    workload = build_workload("cktb", scale=0.2)
    initial = shared_initial_solution(workload, seed=0)
    return workload, initial


class TestFullPipeline:
    def test_three_solvers_same_start_all_feasible(self, pipeline):
        workload, initial = pipeline
        problem = workload.problem
        evaluator = ObjectiveEvaluator(problem)
        start = evaluator.cost(initial)

        qbp = solve_qbp(problem, iterations=25, initial=initial, seed=0)
        gfm = gfm_partition(problem, initial)
        gkl = gkl_partition(problem, initial, max_outer_loops=3)

        for assignment in (
            qbp.best_feasible_assignment,
            gfm.assignment,
            gkl.assignment,
        ):
            assert check_feasibility(problem, assignment).feasible
        assert qbp.best_feasible_cost <= start + 1e-9
        assert gfm.cost <= start + 1e-9
        assert gkl.cost <= start + 1e-9

    def test_relaxing_timing_never_hurts(self, pipeline):
        workload, initial = pipeline
        constrained = solve_qbp(
            workload.problem, iterations=20, initial=initial, seed=0
        )
        relaxed = solve_qbp(
            workload.problem_no_timing, iterations=20, initial=initial, seed=0
        )
        assert relaxed.best_feasible_cost <= constrained.best_feasible_cost + 1e-9

    def test_harness_row_end_to_end(self, pipeline):
        workload, initial = pipeline
        row = run_circuit_experiment(
            workload, with_timing=True, qbp_iterations=10, seed=0, initial=initial
        )
        assert row.all_feasible
        assert row.qbp_cost <= row.start_cost


class TestRobustnessClaims:
    """Paper: 'QBP maintained the same kind of good results from any
    arbitrary initial solution.'"""

    def test_qbp_from_multiple_arbitrary_starts(self):
        workload = build_workload("cktb", scale=0.15)
        problem = workload.problem_no_timing
        evaluator = ObjectiveEvaluator(problem)
        finals = []
        for seed in (1, 2, 3):
            result = solve_qbp(problem, iterations=30, seed=seed)
            assert result.best_feasible_assignment is not None
            finals.append(result.best_feasible_cost)
        spread = (max(finals) - min(finals)) / max(min(finals), 1.0)
        assert spread < 0.35  # same kind of result from any start

    def test_bootstrap_equals_designers_flow(self):
        # The full TCM flow: generate, constrain, bootstrap, verify.
        spec = ClusteredCircuitSpec("flow", num_components=50, num_wires=180)
        circuit = generate_clustered_circuit(spec, seed=77)
        topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.3)
        base = PartitioningProblem(circuit, topo)
        witness = bootstrap_initial_solution(base, seed=0)
        timing = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, witness.part, count=60, seed=0
        )
        problem = PartitioningProblem(circuit, topo, timing=timing)
        start = bootstrap_initial_solution(problem, seed=1)
        assert check_feasibility(problem, start).feasible


class TestSerializationRoundTripInPipeline:
    def test_solve_after_json_roundtrip(self, pipeline):
        workload, initial = pipeline
        restored = circuit_from_dict(circuit_to_dict(workload.circuit))
        problem = PartitioningProblem(
            restored, workload.topology, timing=workload.timing
        )
        result = solve_qbp(problem, iterations=5, initial=initial, seed=0)
        evaluator = ObjectiveEvaluator(workload.problem)
        # Identical circuit -> identical costs for the same assignment.
        assert evaluator.cost(result.assignment) == pytest.approx(
            ObjectiveEvaluator(problem).cost(result.assignment)
        )


class TestDeterministicReproduction:
    def test_full_row_is_reproducible(self):
        workload = build_workload("cktb", scale=0.12)
        rows = [
            run_circuit_experiment(
                workload, with_timing=True, qbp_iterations=8, seed=0
            )
            for _ in range(2)
        ]
        assert rows[0].qbp_cost == rows[1].qbp_cost
        assert rows[0].gfm_cost == rows[1].gfm_cost
        assert rows[0].gkl_cost == rows[1].gkl_cost
