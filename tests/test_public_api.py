"""Guard tests for the public API surface.

These fail loudly if a re-export is dropped or an ``__all__`` entry goes
stale - the kind of breakage that unit tests of the underlying modules
never notice.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.baselines",
    "repro.core",
    "repro.eval",
    "repro.netlist",
    "repro.obs",
    "repro.parallel",
    "repro.runtime",
    "repro.solvers",
    "repro.timing",
    "repro.tools",
    "repro.topology",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_top_level_quickstart_surface():
    import repro

    for symbol in (
        "PartitioningProblem",
        "Assignment",
        "ObjectiveEvaluator",
        "TimingConstraints",
        "Circuit",
        "solve_qbp",
        "bootstrap_initial_solution",
        "generate_clustered_circuit",
        "grid_topology",
        "check_feasibility",
    ):
        assert hasattr(repro, symbol)
    assert repro.__version__ == "1.0.0"


def test_every_public_callable_has_docstring():
    import inspect

    for name in PACKAGES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            # Classes and functions only; type aliases (e.g. the
            # RandomSource Union) have no docstring slot of their own.
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
