"""SolvePipeline orchestration: dispatch, guards, checkpoint wiring."""

from __future__ import annotations

import pytest

from repro.core.constraints import check_feasibility
from repro.pipeline import (
    SolvePipeline,
    UnknownSolverError,
    solver_names,
    supervised_initial_solution,
)


@pytest.fixture
def start(small_problem):
    initial, _rung = supervised_initial_solution(small_problem, 0)
    return initial


class TestDispatch:
    def test_unknown_solver_lists_registered_names(self, small_problem):
        with pytest.raises(UnknownSolverError) as err:
            SolvePipeline().run("magic", small_problem)
        message = str(err.value)
        assert "magic" in message
        for name in solver_names():
            assert name in message

    @pytest.mark.parametrize("solver", solver_names())
    def test_every_registered_solver_produces_a_feasible_outcome(
        self, solver, small_problem, start
    ):
        run = SolvePipeline().run(
            solver,
            small_problem,
            config={
                "qbp": {"iterations": 5},
                "annealing": {"temperature_steps": 5},
                "exact": {"node_limit": 20000},
            }.get(solver, {}),
            initial=start,
            seed=0,
        )
        assert run.solver == solver
        assignment = run.outcome.solution
        if assignment is None:
            assignment = start
        assert check_feasibility(small_problem, assignment).feasible
        assert run.elapsed_seconds >= 0.0

    def test_config_mapping_is_validated(self, small_problem, start):
        with pytest.raises(ValueError, match="iterations"):
            SolvePipeline().run(
                "qbp", small_problem, config={"iterations": 0}, initial=start
            )
        with pytest.raises(ValueError, match="max_passes"):
            SolvePipeline().run(
                "gfm", small_problem, config={"max_passes": -1}, initial=start
            )

    def test_unknown_config_key_names_the_field_set(self, small_problem, start):
        with pytest.raises(ValueError, match="iterations"):
            SolvePipeline().run(
                "qbp", small_problem, config={"iterationz": 5}, initial=start
            )


class TestGuards:
    def test_restarts_on_restartless_solver(self, small_problem, start):
        # gfm's config has no restarts knob at all, so the rejection
        # happens at config validation, naming the known fields.
        with pytest.raises(ValueError, match="restarts"):
            SolvePipeline().run(
                "gfm", small_problem, config={"restarts": 3}, initial=start
            )

    def test_required_initial_is_enforced(self, small_problem):
        with pytest.raises(ValueError, match="initial"):
            SolvePipeline().run("gfm", small_problem)

    def test_checkpoint_on_unsupported_solver(self, small_problem, start, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            SolvePipeline().run(
                "gfm",
                small_problem,
                initial=start,
                checkpoint=tmp_path / "ck.json",
            )

    def test_checkpoint_with_restarts(self, small_problem, start, tmp_path):
        with pytest.raises(ValueError, match="restarts == 1"):
            SolvePipeline().run(
                "qbp",
                small_problem,
                config={"restarts": 2, "iterations": 4},
                initial=start,
                checkpoint=tmp_path / "ck.json",
            )

    def test_checkpoint_and_checkpointer_are_exclusive(
        self, small_problem, start, tmp_path
    ):
        from repro.runtime.checkpoint import QbpCheckpointer

        with pytest.raises(ValueError, match="not both"):
            SolvePipeline().run(
                "qbp",
                small_problem,
                initial=start,
                checkpoint=tmp_path / "a.json",
                checkpointer=QbpCheckpointer(tmp_path / "b.json"),
            )


class TestCheckpointLifecycle:
    def test_completed_run_clears_its_checkpoint(
        self, small_problem, start, tmp_path
    ):
        path = tmp_path / "qbp.json"
        run = SolvePipeline().run(
            "qbp",
            small_problem,
            config={"iterations": 4},
            initial=start,
            seed=0,
            checkpoint=path,
        )
        assert run.resumed_iteration is None
        assert not path.exists()  # cleared on natural completion
