"""Non-paper solvers through the harness: run_table --methods end to end."""

from __future__ import annotations

import pytest

from repro.eval.harness import SolverTimings, run_table
from repro.eval.run import main as eval_main
from repro.pipeline import UnknownSolverError

METHODS = ["qbp", "annealing", "spectral"]


class TestRunTableMethods:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table(
            2,
            scale=0.1,
            qbp_iterations=5,
            circuits=["ckta"],
            methods=METHODS,
        )

    def test_rows_carry_the_requested_method_set(self, rows):
        assert [list(r.solvers) for r in rows] == [METHODS]

    def test_outcomes_are_feasible(self, rows):
        assert rows[0].all_feasible

    def test_timings_round_trip_strictly(self, rows):
        timings = SolverTimings.from_dict(rows[0].timings, expected=METHODS)
        assert timings.names() == tuple(sorted(METHODS))
        assert timings.annealing >= 0.0
        assert timings.spectral >= 0.0

    def test_unknown_method_raises_with_the_registered_list(self):
        with pytest.raises(UnknownSolverError, match="registered solvers"):
            run_table(2, scale=0.1, circuits=["ckta"], methods=["magic"])


class TestEvalRunCli:
    def test_methods_flag_runs_nonpaper_solvers(self, capsys):
        rc = eval_main(
            [
                "--table",
                "2",
                "--scale",
                "0.1",
                "--circuits",
                "ckta",
                "--methods",
                "qbp",
                "annealing",
                "--iterations",
                "5",
                "--no-paper",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "ANNEALING final" in out
        assert "mean improvement: QBP" in out
        assert "ANNEALING" in out.split("mean improvement:")[1]

    def test_unknown_method_is_a_one_line_cli_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            eval_main(["--table", "2", "--methods", "magic"])
        assert err.value.code == 2
        captured = capsys.readouterr().err
        assert "magic" in captured
        assert "registered solvers" in captured
