"""Unit tests for the registry infrastructure (repro.engine.registry)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine.registry import (
    INITIAL_OPTIONAL,
    INITIAL_REQUIRED,
    INITIAL_UNUSED,
    SolverConfig,
    SolverRegistry,
    SolverSpec,
    UnknownSolverError,
    config_field,
)
from repro.pipeline import (
    QbpConfig,
    default_registry,
    paper_solver_names,
    solver_names,
)


@dataclasses.dataclass(frozen=True)
class DemoConfig(SolverConfig):
    steps: int = config_field(10, coerce=int, help="number of steps")
    rate: float = config_field(0.5, coerce=float)

    def validate(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")


def demo_run(problem, initial, config, ctx):  # pragma: no cover - never run
    raise AssertionError("not called")


def demo_spec(**overrides) -> SolverSpec:
    kwargs = dict(
        name="demo",
        summary="a demo solver",
        config_cls=DemoConfig,
        run=demo_run,
    )
    kwargs.update(overrides)
    return SolverSpec(**kwargs)


class TestSolverConfig:
    def test_from_mapping_applies_coercions(self):
        cfg = DemoConfig.from_mapping({"steps": "25", "rate": "0.25"})
        assert cfg.steps == 25
        assert cfg.rate == 0.25

    def test_unknown_key_lists_known_fields(self):
        with pytest.raises(ValueError) as err:
            DemoConfig.from_mapping({"stepz": 5})
        assert "stepz" in str(err.value)
        assert "steps" in str(err.value)

    def test_validate_runs_on_from_mapping(self):
        with pytest.raises(ValueError, match="steps must be >= 1"):
            DemoConfig.from_mapping({"steps": 0})

    def test_canonical_keeps_declaration_order(self):
        assert list(DemoConfig().canonical()) == ["steps", "rate"]

    def test_digest_ignores_explicit_defaults(self):
        assert DemoConfig.from_mapping({}).digest() == DemoConfig.from_mapping(
            {"steps": 10, "rate": 0.5}
        ).digest()

    def test_digest_changes_with_values(self):
        assert DemoConfig().digest() != DemoConfig(steps=11).digest()


class TestSolverSpec:
    def test_rejects_bad_initial_mode(self):
        with pytest.raises(ValueError):
            demo_spec(initial="sometimes")

    @pytest.mark.parametrize(
        "mode, uses",
        [
            (INITIAL_REQUIRED, True),
            (INITIAL_OPTIONAL, True),
            (INITIAL_UNUSED, False),
        ],
    )
    def test_uses_initial_follows_mode(self, mode, uses):
        assert demo_spec(initial=mode).uses_initial is uses

    def test_make_config_accepts_mapping_and_instance(self):
        spec = demo_spec()
        assert spec.make_config({"steps": 3}).steps == 3
        cfg = DemoConfig(steps=4)
        assert spec.make_config(cfg) is cfg
        assert spec.make_config(None) == DemoConfig()

    def test_make_config_rejects_wrong_config_type(self):
        with pytest.raises(ValueError, match="DemoConfig"):
            demo_spec().make_config(QbpConfig())


class TestSolverRegistry:
    def test_registration_order_is_listing_order(self):
        registry = SolverRegistry()
        registry.register(demo_spec())
        registry.register(demo_spec(name="other"))
        assert registry.names() == ("demo", "other")
        assert "demo" in registry
        assert len(registry) == 2

    def test_duplicate_registration_is_an_error(self):
        registry = SolverRegistry()
        registry.register(demo_spec())
        with pytest.raises(ValueError, match="demo"):
            registry.register(demo_spec())
        registry.register(demo_spec(summary="v2"), replace=True)
        assert registry.get("demo").summary == "v2"

    def test_unknown_solver_error_lists_registered_names(self):
        registry = SolverRegistry()
        registry.register(demo_spec())
        with pytest.raises(UnknownSolverError) as err:
            registry.get("nope")
        message = str(err.value)
        assert "nope" in message
        assert "demo" in message


class TestDefaultRegistry:
    def test_builtin_solvers_in_order(self):
        assert solver_names() == (
            "qbp",
            "gfm",
            "gkl",
            "annealing",
            "spectral",
            "exact",
        )

    def test_paper_solvers_are_the_table_trio(self):
        assert paper_solver_names() == ("qbp", "gfm", "gkl")

    def test_qbp_capabilities(self):
        spec = default_registry().get("qbp")
        assert spec.supports_restarts
        assert spec.supports_checkpoint
        assert spec.recompute_report_cost
        assert spec.initial == INITIAL_OPTIONAL

    def test_baselines_require_initial(self):
        registry = default_registry()
        for name in ("gfm", "gkl", "annealing"):
            assert registry.get(name).initial == INITIAL_REQUIRED
        for name in ("spectral", "exact"):
            assert registry.get(name).initial == INITIAL_UNUSED
