"""Property-based tests: objective evaluation and the QBP form agree.

The central mathematical identity of the paper - the objective equals
``yT Q y`` under the flattening - is checked on randomly generated
problems, along with the exactness of incremental deltas.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.core.qmatrix import build_q_dense, quadratic_form
from repro.netlist.circuit import Circuit
from repro.topology.grid import grid_topology


@st.composite
def problems(draw):
    """Random small partitioning problems (possibly with linear costs)."""
    n = draw(st.integers(2, 8))
    m = draw(st.sampled_from([2, 3, 4]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    circuit = Circuit("prop")
    for j in range(n):
        circuit.add_component(f"u{j}", size=float(rng.uniform(0.5, 3.0)))
    for j1 in range(n):
        for j2 in range(n):
            if j1 != j2 and rng.random() < 0.4:
                circuit.add_wire(j1, j2, float(rng.integers(1, 6)))
    topo = grid_topology(1, m, capacity=circuit.total_size())
    linear = rng.uniform(0, 5, (m, n)) if draw(st.booleans()) else None
    alpha = draw(st.sampled_from([0.5, 1.0, 2.0]))
    beta = draw(st.sampled_from([0.5, 1.0, 3.0]))
    return PartitioningProblem(circuit, topo, linear_cost=linear, alpha=alpha, beta=beta)


@settings(max_examples=40, deadline=None)
@given(problems(), st.integers(0, 2**31))
def test_objective_equals_quadratic_form(problem, seed):
    """Section 3.1: the objective is exactly yT Q y."""
    rng = np.random.default_rng(seed)
    evaluator = ObjectiveEvaluator(problem)
    q = build_q_dense(problem)
    for _ in range(3):
        a = Assignment.uniform_random(
            problem.num_components, problem.num_partitions, rng
        )
        assert abs(quadratic_form(q, a.to_y_vector()) - evaluator.cost(a)) < 1e-8


@settings(max_examples=40, deadline=None)
@given(problems(), st.integers(0, 2**31), st.data())
def test_move_delta_exact(problem, seed, data):
    rng = np.random.default_rng(seed)
    evaluator = ObjectiveEvaluator(problem)
    a = Assignment.uniform_random(problem.num_components, problem.num_partitions, rng)
    j = data.draw(st.integers(0, problem.num_components - 1))
    i = data.draw(st.integers(0, problem.num_partitions - 1))
    delta = evaluator.move_delta(a, j, i)
    moved = a.copy().move(j, i)
    assert abs((evaluator.cost(moved) - evaluator.cost(a)) - delta) < 1e-8


@settings(max_examples=40, deadline=None)
@given(problems(), st.integers(0, 2**31), st.data())
def test_swap_delta_exact(problem, seed, data):
    rng = np.random.default_rng(seed)
    evaluator = ObjectiveEvaluator(problem)
    a = Assignment.uniform_random(problem.num_components, problem.num_partitions, rng)
    n = problem.num_components
    j1 = data.draw(st.integers(0, n - 1))
    j2 = data.draw(st.integers(0, n - 1))
    delta = evaluator.swap_delta(a, j1, j2)
    swapped = a.copy().swap(j1, j2)
    assert abs((evaluator.cost(swapped) - evaluator.cost(a)) - delta) < 1e-8


@settings(max_examples=30, deadline=None)
@given(problems(), st.integers(0, 2**31))
def test_normalization_preserves_costs(problem, seed):
    """Section 3: PP(alpha, beta) == PP(1, 1) after scaling P and A."""
    rng = np.random.default_rng(seed)
    normalized = problem.normalized()
    ev_orig = ObjectiveEvaluator(problem)
    ev_norm = ObjectiveEvaluator(normalized)
    for _ in range(3):
        a = Assignment.uniform_random(
            problem.num_components, problem.num_partitions, rng
        )
        assert abs(ev_orig.cost(a) - ev_norm.cost(a)) < 1e-8


@settings(max_examples=30, deadline=None)
@given(problems(), st.integers(0, 2**31))
def test_cost_nonnegative(problem, seed):
    rng = np.random.default_rng(seed)
    evaluator = ObjectiveEvaluator(problem)
    a = Assignment.uniform_random(problem.num_components, problem.num_partitions, rng)
    assert evaluator.cost(a) >= 0.0
