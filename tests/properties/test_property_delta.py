"""Property-based tests: the shared delta kernel is exact (hypothesis).

Satellite of the engine refactor: on random problems — with and without
timing constraints, with and without a linear cost term —

* ``ObjectiveEvaluator.move_delta`` / ``swap_delta`` equal full
  ``cost()`` recomputation,
* every entry of ``DeltaCache.delta`` equals the corresponding full
  recomputation, and stays exact through a random sequence of
  incremental ``apply_move`` updates,
* ``DeltaCache.timing_block`` counts exactly the constraints a move
  would violate, and the capacity loads track the assignment.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.engine.delta import DeltaCache
from repro.netlist.circuit import Circuit
from repro.topology.grid import grid_topology
from repro.timing.constraints import TimingConstraints


@st.composite
def problems(draw):
    """Random small problems; ~half with timing, ~half with linear costs."""
    n = draw(st.integers(2, 8))
    m = draw(st.sampled_from([2, 3, 4]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    circuit = Circuit("prop-delta")
    for j in range(n):
        circuit.add_component(f"u{j}", size=float(rng.uniform(0.5, 3.0)))
    for j1 in range(n):
        for j2 in range(n):
            if j1 != j2 and rng.random() < 0.4:
                circuit.add_wire(j1, j2, float(rng.integers(1, 6)))
    topo = grid_topology(1, m, capacity=circuit.total_size())
    linear = rng.uniform(0, 5, (m, n)) if draw(st.booleans()) else None
    timing = None
    if draw(st.booleans()):
        timing = TimingConstraints(n)
        # Budgets straddle the grid's delay range so constraints bind
        # for some placements and not others.
        max_delay = float(topo.delay_matrix.max())
        for _ in range(draw(st.integers(1, 4))):
            j1 = int(rng.integers(0, n))
            j2 = int(rng.integers(0, n))
            if j1 == j2:
                continue
            timing.add(j1, j2, float(rng.uniform(0.0, max_delay * 1.2)))
    alpha = draw(st.sampled_from([0.5, 1.0, 2.0]))
    beta = draw(st.sampled_from([0.5, 1.0, 3.0]))
    return PartitioningProblem(
        circuit, topo, linear_cost=linear, timing=timing, alpha=alpha, beta=beta
    )


def random_assignment(problem, rng):
    return Assignment.uniform_random(
        problem.num_components, problem.num_partitions, rng
    )


class TestEvaluatorDeltasMatchFullRecompute:
    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31), st.data())
    def test_move_delta(self, problem, seed, data):
        rng = np.random.default_rng(seed)
        evaluator = ObjectiveEvaluator(problem)
        a = random_assignment(problem, rng)
        j = data.draw(st.integers(0, problem.num_components - 1))
        i = data.draw(st.integers(0, problem.num_partitions - 1))
        delta = evaluator.move_delta(a, j, i)
        moved = a.copy().move(j, i)
        assert abs((evaluator.cost(moved) - evaluator.cost(a)) - delta) < 1e-8

    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31), st.data())
    def test_swap_delta(self, problem, seed, data):
        rng = np.random.default_rng(seed)
        evaluator = ObjectiveEvaluator(problem)
        a = random_assignment(problem, rng)
        n = problem.num_components
        j1 = data.draw(st.integers(0, n - 1))
        j2 = data.draw(st.integers(0, n - 1))
        delta = evaluator.swap_delta(a, j1, j2)
        swapped = a.copy().swap(j1, j2)
        assert abs((evaluator.cost(swapped) - evaluator.cost(a)) - delta) < 1e-8


class TestDeltaCacheMatchesFullRecompute:
    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31))
    def test_delta_matrix_is_exact(self, problem, seed):
        """Every (j, i) entry equals cost(moved) - cost(current)."""
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        evaluator = cache.evaluator
        base = evaluator.cost(a)
        for j in range(problem.num_components):
            for i in range(problem.num_partitions):
                moved = a.copy().move(j, i)
                assert abs((evaluator.cost(moved) - base) - cache.delta[j, i]) < 1e-8

    @settings(max_examples=30, deadline=None)
    @given(problems(), st.integers(0, 2**31), st.data())
    def test_incremental_updates_stay_exact(self, problem, seed, data):
        """After random apply_move sequences, state matches ground truth."""
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        moves = data.draw(st.integers(1, 6))
        for _ in range(moves):
            j = int(rng.integers(0, problem.num_components))
            i = int(rng.integers(0, problem.num_partitions))
            before = cache.current_cost()
            reported = cache.apply_move(j, i)
            after = cache.current_cost()
            assert abs((after - before) - reported) < 1e-8
        cache.audit()  # delta, timing_block and loads vs full recompute

    @settings(max_examples=30, deadline=None)
    @given(problems(), st.integers(0, 2**31), st.data())
    def test_apply_swap_reports_exact_delta(self, problem, seed, data):
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        n = problem.num_components
        j1 = data.draw(st.integers(0, n - 1))
        j2 = data.draw(st.integers(0, n - 1))
        before = cache.current_cost()
        reported = cache.apply_swap(j1, j2)
        assert abs((cache.current_cost() - before) - reported) < 1e-8
        cache.audit()

    @settings(max_examples=30, deadline=None)
    @given(problems(), st.integers(0, 2**31))
    def test_timing_block_counts_violations_exactly(self, problem, seed):
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        d = problem.delay_matrix
        for j in range(problem.num_components):
            for i in range(problem.num_partitions):
                expected = 0
                for j1, j2, budget in problem.timing.items():
                    if j1 == j and d[i, a[j2]] > budget:
                        expected += 1
                    elif j2 == j and d[a[j1], i] > budget:
                        expected += 1
                assert cache.timing_block[j, i] == expected

    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31))
    def test_eta_matches_gain_semantics_without_timing(self, problem, seed):
        """On timing-free problems the symmetric eta rows relate to deltas:
        ``delta[j, i] = eta[j, i] - eta[j, part[j]]`` (both are the full
        marginal cost of placing ``j`` at ``i``)."""
        if problem.has_timing:
            return
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        eta = cache.eta(a.part, mode="symmetric", penalty=1.0)
        anchored = eta - eta[np.arange(problem.num_components), a.part][:, None]
        assert np.allclose(anchored, cache.delta, atol=1e-8)
