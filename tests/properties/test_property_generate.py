"""Property-based tests: the circuit generator's exactness guarantees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.netlist.io import circuit_from_dict, circuit_to_dict
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


@st.composite
def specs(draw):
    n = draw(st.integers(2, 60))
    wires = draw(st.integers(n - 1, 4 * n))
    clusters = draw(st.integers(0, min(8, n)))
    intra = draw(st.floats(0.0, 1.0))
    return ClusteredCircuitSpec(
        "prop",
        num_components=n,
        num_wires=wires,
        num_clusters=clusters,
        intra_cluster_probability=intra,
    )


class TestGeneratorProperties:
    @settings(max_examples=50, deadline=None)
    @given(specs(), st.integers(0, 2**31))
    def test_exact_counts_always(self, spec, seed):
        circuit = generate_clustered_circuit(spec, seed=seed)
        assert circuit.num_components == spec.num_components
        assert circuit.num_wires == spec.num_wires
        circuit.validate()

    @settings(max_examples=30, deadline=None)
    @given(specs(), st.integers(0, 2**31))
    def test_connected_always(self, spec, seed):
        circuit = generate_clustered_circuit(spec, seed=seed)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nb in circuit.neighbors(node):
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        assert len(seen) == spec.num_components

    @settings(max_examples=30, deadline=None)
    @given(specs(), st.integers(0, 2**31))
    def test_json_roundtrip_identity(self, spec, seed):
        circuit = generate_clustered_circuit(spec, seed=seed)
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert list(restored.wires()) == list(circuit.wires())
        assert np.array_equal(restored.sizes(), circuit.sizes())


class TestSynthesisProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**31),
        st.integers(1, 40),
        st.floats(0.0, 1.0),
        st.integers(0, 3),
    )
    def test_reference_always_satisfies(self, seed, count, tightness, margin):
        spec = ClusteredCircuitSpec("s", num_components=20, num_wires=60)
        circuit = generate_clustered_circuit(spec, seed=seed)
        topo = grid_topology(2, 2, capacity=circuit.total_size())
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, 4, size=20)
        constraints = synthesize_feasible_constraints(
            circuit,
            topo.delay_matrix,
            reference,
            count=count,
            tightness=tightness,
            max_margin=margin,
            min_budget=0.0,
            seed=seed,
        )
        assert constraints.num_pairs == count
        assert constraints.is_satisfied(reference, topo.delay_matrix)
