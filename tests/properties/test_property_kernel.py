"""Property-based tests: batched and scalar kernels agree (hypothesis).

Satellite of the batched move-evaluation layer: on random problems —
with and without timing constraints, with and without a linear cost
term, across capacity regimes —

* ``DeltaCache.all_move_deltas()`` matches the per-component
  ``move_deltas(j)`` reference element-wise,
* ``scan_move_deltas()`` returns the same matrix under both kernels,
* a random ``apply_move`` replay leaves batched and scalar caches with
  identical maintained state (delta, timing block, loads, assignment)
  and **identical** ``delta.*`` stats counters (the bench gate depends
  on counter accounting being kernel-independent),
* both kernels pass the ground-truth ``audit()`` afterwards.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.engine.delta import KERNEL_MODES, DeltaCache

from tests.properties.test_property_delta import problems, random_assignment


class TestAllMoveDeltasMatchesScalarReference:
    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31))
    def test_elementwise_against_move_deltas(self, problem, seed):
        """Every row of the batched matrix equals the scalar row."""
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        batched = cache.all_move_deltas()
        assert batched.shape == (problem.num_components, problem.num_partitions)
        for j in range(problem.num_components):
            assert np.allclose(batched[j], cache.move_deltas(j), atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31))
    def test_explicit_part_argument(self, problem, seed):
        """all_move_deltas(part) evaluates a hypothetical assignment."""
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        other = random_assignment(problem, rng)
        cache = DeltaCache(problem, a)
        hypothetical = cache.all_move_deltas(other.part)
        reference = DeltaCache(problem, other)
        assert np.allclose(hypothetical, reference.delta, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(problems(), st.integers(0, 2**31))
    def test_scan_agrees_across_kernels(self, problem, seed):
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        scans = {
            kernel: DeltaCache(problem, a, kernel=kernel).scan_move_deltas()
            for kernel in KERNEL_MODES
        }
        assert np.allclose(scans["batched"], scans["scalar"], atol=1e-8)


class TestReplayEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(problems(), st.integers(0, 2**31), st.data())
    def test_random_replay_keeps_kernels_identical(self, problem, seed, data):
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        caches = {k: DeltaCache(problem, a, kernel=k) for k in KERNEL_MODES}
        moves = data.draw(st.integers(1, 8))
        for _ in range(moves):
            if rng.random() < 0.25 and problem.num_components >= 2:
                j1, j2 = rng.choice(problem.num_components, 2, replace=False)
                reported = {
                    k: c.apply_swap(int(j1), int(j2)) for k, c in caches.items()
                }
            else:
                j = int(rng.integers(0, problem.num_components))
                i = int(rng.integers(0, problem.num_partitions))
                reported = {k: c.apply_move(j, i) for k, c in caches.items()}
            assert abs(reported["batched"] - reported["scalar"]) < 1e-8
        b, s = caches["batched"], caches["scalar"]
        assert np.allclose(b.delta, s.delta, atol=1e-8)
        assert np.array_equal(b.timing_block, s.timing_block)
        assert np.array_equal(b.part, s.part)
        assert np.allclose(b.loads, s.loads)
        assert b.stats.as_dict() == s.stats.as_dict()
        b.audit()
        s.audit()

    @settings(max_examples=30, deadline=None)
    @given(problems(), st.integers(0, 2**31), st.data())
    def test_reset_resynchronises_both_kernels(self, problem, seed, data):
        """reset() to a fresh assignment leaves both kernels exact."""
        rng = np.random.default_rng(seed)
        a = random_assignment(problem, rng)
        caches = {k: DeltaCache(problem, a, kernel=k) for k in KERNEL_MODES}
        moves = data.draw(st.integers(1, 4))
        for _ in range(moves):
            j = int(rng.integers(0, problem.num_components))
            i = int(rng.integers(0, problem.num_partitions))
            for cache in caches.values():
                cache.apply_move(j, i)
        fresh = random_assignment(problem, rng)
        for cache in caches.values():
            cache.reset(Assignment(fresh.part.copy(), problem.num_partitions))
            cache.audit()
        assert np.allclose(
            caches["batched"].delta, caches["scalar"].delta, atol=1e-8
        )
