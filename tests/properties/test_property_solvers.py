"""Property-based tests: solver invariants on random instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.constraints import capacity_violations, check_feasibility
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.gap import GapInfeasibleError, solve_gap
from repro.solvers.greedy import greedy_feasible_assignment
from repro.solvers.lap import solve_lap
from repro.solvers.repair import feasible_merge
from repro.core.problem import PartitioningProblem
from repro.topology.grid import grid_topology


@st.composite
def gap_instances(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    m = draw(st.integers(2, 5))
    n = draw(st.integers(1, 20))
    cost = rng.uniform(0, 10, (m, n))
    sizes = rng.uniform(0.5, 3.0, n)
    slack = draw(st.floats(1.1, 2.0))
    caps = np.full(m, sizes.sum() / m * slack)
    return cost, sizes, caps


class TestGapProperties:
    @settings(max_examples=60, deadline=None)
    @given(gap_instances())
    def test_capacity_always_respected(self, instance):
        cost, sizes, caps = instance
        try:
            result = solve_gap(cost, sizes, caps)
        except GapInfeasibleError:
            return
        loads = np.bincount(result.assignment, weights=sizes, minlength=caps.size)
        assert (loads <= caps + 1e-6).all()

    @settings(max_examples=60, deadline=None)
    @given(gap_instances())
    def test_cost_reported_exactly(self, instance):
        cost, sizes, caps = instance
        try:
            result = solve_gap(cost, sizes, caps)
        except GapInfeasibleError:
            return
        n = cost.shape[1]
        assert abs(result.cost - cost[result.assignment, np.arange(n)].sum()) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(gap_instances())
    def test_improvement_monotone(self, instance):
        cost, sizes, caps = instance
        try:
            raw = solve_gap(cost, sizes, caps, improve=False)
            polished = solve_gap(cost, sizes, caps, improve=True)
        except GapInfeasibleError:
            return
        assert polished.cost <= raw.cost + 1e-9


class TestLapProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 2**31))
    def test_result_is_permutation_and_lower_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 10, (n, n))
        result = solve_lap(cost)
        assert sorted(result.col_of_row.tolist()) == list(range(n))
        # Optimal value is at least the sum of row minima (a valid LB).
        assert result.cost >= cost.min(axis=1).sum() - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 7), st.integers(0, 2**31))
    def test_no_single_swap_improves(self, n, seed):
        """2-opt optimality: any pairwise swap cannot reduce the cost."""
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 10, (n, n))
        result = solve_lap(cost)
        perm = result.col_of_row
        for i in range(n):
            for j in range(i + 1, n):
                swapped = perm.copy()
                swapped[i], swapped[j] = swapped[j], swapped[i]
                value = cost[np.arange(n), swapped].sum()
                assert value >= result.cost - 1e-9


@st.composite
def small_problems(draw):
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(8, 24))
    wires = draw(st.integers(n, 3 * n))
    spec = ClusteredCircuitSpec("p", num_components=n, num_wires=wires)
    circuit = generate_clustered_circuit(spec, seed=seed)
    slack = draw(st.floats(1.01, 1.5))
    # Guarantee a greedy packing exists: largest-first/most-residual
    # placement (LPT scheduling) has makespan <= (4/3)*OPT with
    # OPT >= max(total/m, max component), so any capacity at or above
    # that bound is provably packable by the deterministic constructor.
    # The previous max(total/4*slack, max*1.05) formula admitted
    # instances (e.g. several near-capacity components) where no greedy
    # packing - sometimes no packing at all - exists.
    capacity = (
        max(circuit.total_size() / 4, float(circuit.sizes().max())) * 4 / 3 * slack
    )
    topo = grid_topology(2, 2, capacity=capacity)
    return PartitioningProblem(circuit, topo), seed


class TestGreedyAndMergeProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_problems())
    def test_greedy_always_capacity_feasible(self, setting):
        problem, seed = setting
        a = greedy_feasible_assignment(problem, seed=seed)
        assert not capacity_violations(a, problem.sizes(), problem.capacities())

    @settings(max_examples=25, deadline=None)
    @given(small_problems(), st.integers(0, 2**31))
    def test_merge_preserves_feasibility(self, setting, seed2):
        problem, seed = setting
        base = greedy_feasible_assignment(problem, seed=seed)
        rng = np.random.default_rng(seed2)
        target = Assignment(
            rng.integers(0, 4, size=problem.num_components), 4
        )
        merged = feasible_merge(problem, base, target)
        assert check_feasibility(problem, merged).feasible
