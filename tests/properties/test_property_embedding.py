"""Property-based tests: the embedding theorems on random instances.

Theorem 1 (exact embedding) and Theorem 2 (sufficient condition) are
checked by exhaustive enumeration on randomly generated tiny problems -
the strongest form of validation the appendix proofs admit.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.constraints import capacity_violations
from repro.core.embedding import (
    RegionOfFeasiblePairs,
    embed_timing,
    matrices_coincident_over_region,
    theorem1_penalty,
)
from repro.core.problem import PartitioningProblem
from repro.core.qmatrix import build_q_dense, quadratic_form
from repro.netlist.circuit import Circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


@st.composite
def timed_problems(draw):
    n = draw(st.integers(2, 5))
    m = draw(st.sampled_from([2, 3]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    circuit = Circuit("prop")
    for j in range(n):
        circuit.add_component(f"u{j}", size=1.0)
    for j1 in range(n):
        for j2 in range(j1 + 1, n):
            if rng.random() < 0.6:
                circuit.add_undirected_wire(j1, j2, float(rng.integers(1, 5)))
    topo = grid_topology(1, m, capacity=float(n))
    tc = TimingConstraints(n)
    for j1 in range(n):
        for j2 in range(j1 + 1, n):
            if rng.random() < 0.5:
                tc.add(j1, j2, float(rng.integers(0, m)), symmetric=True)
    return PartitioningProblem(circuit, topo, timing=tc)


def feasible_assignments(problem, region):
    sizes, caps = problem.sizes(), problem.capacities()
    for combo in itertools.product(
        range(problem.num_partitions), repeat=problem.num_components
    ):
        a = Assignment(list(combo), problem.num_partitions)
        if capacity_violations(a, sizes, caps):
            continue
        yield a, region.is_feasible_y(a.to_y_vector())


@settings(max_examples=30, deadline=None)
@given(timed_problems())
def test_theorem1_equivalence(problem):
    """QBP(Q') and QBP_R(Q) share minima whenever F_R is nonempty."""
    region = RegionOfFeasiblePairs.from_problem(problem)
    q = build_q_dense(problem)
    q_prime = embed_timing(q, problem, penalty=None)

    best_prime, arg_prime = np.inf, None
    best_constrained = np.inf
    any_feasible = False
    for a, feasible in feasible_assignments(problem, region):
        y = a.to_y_vector()
        value_prime = quadratic_form(q_prime, y)
        if value_prime < best_prime:
            best_prime, arg_prime = value_prime, a
        if feasible:
            any_feasible = True
            best_constrained = min(best_constrained, quadratic_form(q, y))

    if not any_feasible:
        return  # the theorem's hypothesis (F_R nonempty) does not hold
    assert region.is_feasible_y(arg_prime.to_y_vector())
    assert abs(best_prime - best_constrained) < 1e-6


@settings(max_examples=30, deadline=None)
@given(timed_problems(), st.floats(1.0, 200.0))
def test_theorem2_sufficient_condition(problem, penalty):
    """If the Q_hat minimiser is in F_R it is optimal for QBP_R(Q)."""
    region = RegionOfFeasiblePairs.from_problem(problem)
    q = build_q_dense(problem)
    q_hat = embed_timing(q, problem, penalty=penalty)
    assert matrices_coincident_over_region(q, q_hat, region)

    best_hat, arg_hat = np.inf, None
    best_constrained = np.inf
    any_feasible = False
    for a, feasible in feasible_assignments(problem, region):
        y = a.to_y_vector()
        value = quadratic_form(q_hat, y)
        if value < best_hat:
            best_hat, arg_hat = value, a
        if feasible:
            any_feasible = True
            best_constrained = min(best_constrained, quadratic_form(q, y))

    if not any_feasible or arg_hat is None:
        return
    if region.is_feasible_y(arg_hat.to_y_vector()):
        # Theorem 2's conclusion.
        assert abs(quadratic_form(q, arg_hat.to_y_vector()) - best_constrained) < 1e-6


@settings(max_examples=25, deadline=None)
@given(timed_problems())
def test_theorem1_penalty_bound(problem):
    q = build_q_dense(problem)
    u = theorem1_penalty(q)
    assert u > 2.0 * np.abs(q).sum()
    # Any single out-of-region activation exceeds every in-region total.
    q_prime = embed_timing(q, problem, penalty=None)
    region = RegionOfFeasiblePairs.from_problem(problem)
    mask = region.feasibility_mask()
    if (~mask).any():
        assert q_prime[~mask].min() > np.abs(q[mask]).sum()
