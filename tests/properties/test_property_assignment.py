"""Property-based tests: the three solution representations (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.qmatrix import flatten_index, unflatten_index


@st.composite
def assignments(draw, max_n=40, max_m=12):
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(1, max_n))
    part = draw(st.lists(st.integers(0, m - 1), min_size=n, max_size=n))
    return Assignment(part, m)


class TestRepresentationRoundTrips:
    @given(assignments())
    def test_x_matrix_roundtrip(self, a):
        assert Assignment.from_x_matrix(a.to_x_matrix()) == a

    @given(assignments())
    def test_y_vector_roundtrip(self, a):
        assert Assignment.from_y_vector(a.to_y_vector(), a.num_partitions) == a

    @given(assignments())
    def test_x_matrix_satisfies_c3(self, a):
        x = a.to_x_matrix()
        assert np.array_equal(x.sum(axis=0), np.ones(a.num_components, dtype=int))

    @given(assignments())
    def test_y_has_exactly_n_ones(self, a):
        assert int(a.to_y_vector().sum()) == a.num_components


class TestFlattening:
    @given(st.integers(1, 64), st.integers(0, 4000))
    def test_unflatten_flatten_identity(self, m, r):
        i, j = unflatten_index(r, m)
        assert 0 <= i < m
        assert flatten_index(i, j, m) == r

    @given(st.integers(1, 16), st.integers(0, 15), st.integers(0, 200))
    def test_flatten_unflatten_identity(self, m, i, j):
        if i >= m:
            i = i % m
        r = flatten_index(i, j, m)
        assert unflatten_index(r, m) == (i, j)

    @given(st.integers(2, 12), st.integers(1, 30))
    def test_flattening_is_bijection(self, m, n):
        seen = {
            flatten_index(i, j, m) for i in range(m) for j in range(n)
        }
        assert seen == set(range(m * n))


class TestMutationInvariants:
    @given(assignments(), st.data())
    def test_swap_is_involution(self, a, data):
        n = a.num_components
        j1 = data.draw(st.integers(0, n - 1))
        j2 = data.draw(st.integers(0, n - 1))
        before = a.copy()
        a.swap(j1, j2)
        a.swap(j1, j2)
        assert a == before

    @given(assignments(), st.data())
    def test_move_changes_only_target(self, a, data):
        n, m = a.num_components, a.num_partitions
        j = data.draw(st.integers(0, n - 1))
        i = data.draw(st.integers(0, m - 1))
        before = a.copy()
        a.move(j, i)
        assert a[j] == i
        for k in range(n):
            if k != j:
                assert a[k] == before[k]

    @given(assignments())
    def test_members_partition_the_components(self, a):
        all_members = []
        for i in range(a.num_partitions):
            all_members.extend(a.members(i))
        assert sorted(all_members) == list(range(a.num_components))
