"""The paper's Section 3.3 worked example, reproduced exactly.

Three components a, b, c into four partitions on a 2x2 grid; five wires
a-b, two wires b-c; D_C = 1 between the wired pairs, infinity otherwise;
B = D = the Manhattan distance matrix; penalty 50.  The paper prints the
resulting 12x12 ``Q_hat`` - these tests rebuild it entry for entry.
"""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.embedding import RegionOfFeasiblePairs, embed_timing
from repro.core.objective import ObjectiveEvaluator
from repro.core.qmatrix import build_q_dense, quadratic_form
from repro.solvers.exact import solve_exact


def paper_qhat_block(scale: float) -> np.ndarray:
    """One off-diagonal block of the paper's matrix, at wire weight ``scale``.

    The block is ``scale * B`` with every distance-2 entry (a timing
    violation against the budget of 1) overwritten by 50.
    """
    b = np.array(
        [[0, 1, 1, 2], [1, 0, 2, 1], [1, 2, 0, 1], [2, 1, 1, 0]], dtype=float
    )
    block = scale * b
    block[b == 2] = 50.0
    return block


@pytest.fixture
def qhat(paper_problem) -> np.ndarray:
    q = build_q_dense(paper_problem)
    return embed_timing(q, paper_problem, penalty=50.0)


class TestQhatMatrix:
    def test_shape(self, qhat):
        assert qhat.shape == (12, 12)

    def test_ab_block(self, qhat):
        # Components a=0, b=1: wire weight 5 both directions.
        assert np.array_equal(qhat[0:4, 4:8], paper_qhat_block(5.0))
        assert np.array_equal(qhat[4:8, 0:4], paper_qhat_block(5.0))

    def test_bc_block(self, qhat):
        assert np.array_equal(qhat[4:8, 8:12], paper_qhat_block(2.0))
        assert np.array_equal(qhat[8:12, 4:8], paper_qhat_block(2.0))

    def test_ac_block_zero(self, qhat):
        # D_C(a, c) = inf: no wires, no penalties.
        assert np.array_equal(qhat[0:4, 8:12], np.zeros((4, 4)))
        assert np.array_equal(qhat[8:12, 0:4], np.zeros((4, 4)))

    def test_same_component_blocks_zero(self, qhat):
        # The paper's diagonal blocks are "-" (zero, P = 0 here): C3
        # excludes same-component pairs, so they carry no penalty.
        for j in range(3):
            block = qhat[4 * j : 4 * j + 4, 4 * j : 4 * j + 4]
            assert np.array_equal(block, np.zeros((4, 4)))

    def test_paper_row_a2(self, qhat):
        # The paper spells out row (a, 2): [-, p2a, -, -, 5, -, 50, 5, ...].
        # 0-based: r = 1 (i=1, j=0).
        row = qhat[1]
        expected = np.array([0, 0, 0, 0, 5, 0, 50, 5, 0, 0, 0, 0], dtype=float)
        assert np.array_equal(row, expected)

    def test_highlighted_violation_entry(self, qhat):
        # "Consider the entry at row a,2 and column b,3 which is 50":
        # D(2, 3) = 2 exceeds D_C(a, b) = 1 (both 1-based in the paper).
        r1 = 1 + 0 * 4  # (i=1, j=a)
        r2 = 2 + 1 * 4  # (i=2, j=b)
        assert qhat[r1, r2] == 50.0


class TestRegion:
    def test_region_matches_matrix(self, paper_problem, qhat):
        region = RegionOfFeasiblePairs.from_problem(paper_problem)
        q = build_q_dense(paper_problem)
        mask = region.feasibility_mask()
        # Inside the region Q_hat coincides with Q; outside it is 50.
        assert np.array_equal(qhat[mask], q[mask])
        assert np.all(qhat[~mask] == 50.0)

    def test_feasible_assignment_detected(self, paper_problem):
        region = RegionOfFeasiblePairs.from_problem(paper_problem)
        # a,b,c on partitions 0,1,3: distances a-b = 1, b-c = 1. Feasible.
        good = Assignment([0, 1, 3], 4)
        assert region.is_feasible_y(good.to_y_vector())
        # a at 0, b at 3: distance 2 violates the budget of 1.
        bad = Assignment([0, 3, 1], 4)
        assert not region.is_feasible_y(bad.to_y_vector())


class TestSolvingTheExample:
    def test_optimum_is_timing_feasible_and_minimal(self, paper_problem, qhat):
        result = solve_exact(paper_problem)
        assert result.proven_optimal
        assignment = result.assignment
        evaluator = ObjectiveEvaluator(paper_problem)
        assert evaluator.timing_violation_count(assignment) == 0
        # Best possible: both wired pairs at distance 1 -> 2*(5+2) = 14
        # (each undirected wire bundle appears in both A directions).
        assert result.cost == pytest.approx(14.0)

    def test_qhat_quadratic_form_matches_penalized_cost(self, paper_problem, qhat):
        evaluator = ObjectiveEvaluator(paper_problem)
        rng = np.random.default_rng(1)
        for _ in range(30):
            a = Assignment.uniform_random(3, 4, rng)
            assert quadratic_form(qhat, a.to_y_vector()) == pytest.approx(
                evaluator.penalized_cost(a, 50.0)
            )
