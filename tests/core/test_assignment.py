"""Tests for repro.core.assignment: the three solution representations."""

import numpy as np
import pytest

from repro.core.assignment import Assignment, assignments_agree


class TestConstruction:
    def test_basic(self):
        a = Assignment([0, 2, 1], 3)
        assert a.num_components == 3
        assert a.num_partitions == 3
        assert a[1] == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Assignment([0, 3], 3)
        with pytest.raises(ValueError):
            Assignment([-1], 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Assignment([[0, 1]], 2)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            Assignment([0], 0)

    def test_copies_input(self):
        source = np.array([0, 1])
        a = Assignment(source, 2)
        source[0] = 1
        assert a[0] == 0


class TestMutation:
    def test_setitem_and_move(self):
        a = Assignment([0, 0], 2)
        a.move(0, 1)
        assert a[0] == 1
        with pytest.raises(ValueError):
            a[0] = 5

    def test_swap(self):
        a = Assignment([0, 1], 2)
        a.swap(0, 1)
        assert (a[0], a[1]) == (1, 0)

    def test_copy_is_independent(self):
        a = Assignment([0, 1], 2)
        b = a.copy()
        b.move(0, 1)
        assert a[0] == 0

    def test_members(self):
        a = Assignment([0, 1, 0, 1], 2)
        assert a.members(0) == [0, 2]
        assert a.members(1) == [1, 3]
        with pytest.raises(IndexError):
            a.members(2)


class TestEqualityHash:
    def test_equal(self):
        assert Assignment([0, 1], 2) == Assignment([0, 1], 2)

    def test_not_equal_different_m(self):
        assert Assignment([0, 1], 2) != Assignment([0, 1], 3)

    def test_hashable(self):
        assert hash(Assignment([0, 1], 2)) == hash(Assignment([0, 1], 2))

    def test_usable_in_set(self):
        s = {Assignment([0, 1], 2), Assignment([0, 1], 2), Assignment([1, 0], 2)}
        assert len(s) == 2


class TestXMatrix:
    def test_roundtrip(self):
        a = Assignment([2, 0, 1, 2], 3)
        x = a.to_x_matrix()
        assert x.shape == (3, 4)
        assert x.sum() == 4
        assert Assignment.from_x_matrix(x) == a

    def test_c3_columns(self):
        x = Assignment([1, 1, 0], 2).to_x_matrix()
        assert np.array_equal(x.sum(axis=0), np.ones(3))

    def test_from_x_rejects_non_binary(self):
        with pytest.raises(ValueError, match="binary"):
            Assignment.from_x_matrix([[0.5], [0.5]])

    def test_from_x_rejects_c3_violation(self):
        with pytest.raises(ValueError, match="C3"):
            Assignment.from_x_matrix([[1, 0], [1, 0]])
        with pytest.raises(ValueError, match="C3"):
            Assignment.from_x_matrix([[0, 1], [0, 0]])


class TestYVector:
    def test_paper_indexing(self):
        # r = i + j*M: component j occupies the j-th block of size M.
        a = Assignment([1, 3, 0], 4)
        y = a.to_y_vector()
        assert y.shape == (12,)
        assert y[1] == 1  # component 0 at partition 1
        assert y[4 + 3] == 1  # component 1 at partition 3
        assert y[8 + 0] == 1  # component 2 at partition 0
        assert y.sum() == 3

    def test_roundtrip(self):
        a = Assignment([1, 3, 0, 2, 2], 4)
        assert Assignment.from_y_vector(a.to_y_vector(), 4) == a

    def test_from_y_rejects_bad_length(self):
        with pytest.raises(ValueError, match="multiple"):
            Assignment.from_y_vector(np.zeros(7), 4)

    def test_from_y_rejects_double_assignment(self):
        y = np.zeros(8, dtype=int)
        y[0] = y[1] = 1  # component 0 in two partitions
        y[4] = 1
        with pytest.raises(ValueError, match="C3"):
            Assignment.from_y_vector(y, 4)


class TestConstructors:
    def test_round_robin(self):
        a = Assignment.round_robin(5, 3)
        assert a.part.tolist() == [0, 1, 2, 0, 1]

    def test_uniform_random_in_range(self):
        rng = np.random.default_rng(0)
        a = Assignment.uniform_random(100, 7, rng)
        assert a.part.min() >= 0 and a.part.max() < 7


def test_assignments_agree():
    a = Assignment([0, 1, 2], 3)
    b = Assignment([0, 1, 0], 3)
    assert assignments_agree(a, b, [0, 1])
    assert not assignments_agree(a, b, [0, 2])
