"""Tests for repro.core.constraints (C1/C2 checking, TimingIndex)."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.constraints import (
    CapacityTracker,
    FeasibilityReport,
    TimingIndex,
    capacity_violations,
    check_feasibility,
    partition_loads,
)
from repro.timing.constraints import TimingConstraints


class TestPartitionLoads:
    def test_basic(self):
        loads = partition_loads([0, 1, 0], np.array([2.0, 3.0, 4.0]), 3)
        assert np.array_equal(loads, [6.0, 3.0, 0.0])

    def test_accepts_assignment_object(self):
        a = Assignment([0, 1], 2)
        loads = partition_loads(a, np.array([1.0, 1.0]), 2)
        assert np.array_equal(loads, [1.0, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            partition_loads([0], np.array([1.0, 2.0]), 2)


class TestCapacityViolations:
    def test_detects_overflow(self):
        out = capacity_violations([0, 0], np.array([3.0, 3.0]), np.array([5.0, 5.0]))
        assert out == [(0, 6.0, 5.0)]

    def test_exact_fit_allowed(self):
        out = capacity_violations([0, 0], np.array([2.5, 2.5]), np.array([5.0, 5.0]))
        assert out == []

    def test_multiple_violations_sorted(self):
        sizes = np.array([10.0, 10.0])
        caps = np.array([1.0, 1.0])
        out = capacity_violations([0, 1], sizes, caps)
        assert [v[0] for v in out] == [0, 1]


class TestCheckFeasibility:
    def test_feasible(self, paper_problem):
        report = check_feasibility(paper_problem, Assignment([0, 1, 3], 4))
        assert report.feasible
        assert report.summary() == "feasible"

    def test_timing_violation_reported(self, paper_problem):
        report = check_feasibility(paper_problem, Assignment([0, 3, 1], 4))
        assert not report.feasible
        assert len(report.timing_violations) == 2
        j1, j2, delay, budget = report.timing_violations[0]
        assert delay > budget

    def test_capacity_violation_reported(self, paper_problem):
        report = check_feasibility(paper_problem, Assignment([0, 0, 0], 4))
        assert not report.feasible
        assert report.capacity_violations  # unit capacities, three components
        assert "capacity" in report.summary()


class TestTimingIndex:
    @pytest.fixture
    def index(self, paper_problem):
        return TimingIndex(paper_problem.timing, paper_problem.delay_matrix)

    def test_degree(self, index):
        # a: 2 directed constraints with b; b: 4 total; c: 2 with b.
        assert index.degree(0) == 2
        assert index.degree(1) == 4
        assert index.degree(2) == 2

    def test_constrained_components(self, index):
        assert index.constrained_components() == [0, 1, 2]

    def test_move_feasibility(self, index):
        part = np.array([0, 1, 3])
        # Moving a to 3: distance to b (at 1) becomes 1 -> ok.
        assert index.move_is_feasible(part, 0, 3)
        # Moving a to 2: distance to b becomes 2 -> violation.
        assert not index.move_is_feasible(part, 0, 2)

    def test_move_ignore_component(self, index):
        part = np.array([0, 1, 3])
        # Same violating move is fine if b is exempted (swap logic).
        assert index.move_is_feasible(part, 0, 2, ignore=1)

    def test_swap_feasibility_mutual_pair(self, index):
        part = np.array([0, 1, 3])
        # Swapping a and c: a -> 3 (distance 1 to b), c -> 0 (distance 1
        # to b).  Both budgets hold.
        assert index.swap_is_feasible(part, 0, 2)
        # Swapping a and b: b lands on 0, distance 2 from c -> violated.
        assert not index.swap_is_feasible(part, 0, 1)

    def test_swap_infeasible(self, index):
        # a-b adjacent, c far away; swapping b and c breaks a-b.
        part = np.array([0, 1, 2])  # d(0,1)=1 ok; b-c: d(1,2)=2 violated already
        # Move b to where c is and vice versa: a-b becomes d(0,2)=1 ok,
        # b-c stays d(2,1)=2 -> infeasible.
        assert not index.swap_is_feasible(part, 1, 2)

    def test_violated_by(self, index):
        part = np.array([0, 3, 1])  # a-b at distance 2 (both directions)
        assert index.violated_by(part, 0) == 2
        assert index.violated_by(part, 1) == 2

    def test_empty_constraints(self):
        index = TimingIndex(TimingConstraints(3), np.zeros((2, 2)))
        assert index.constrained_components() == []
        assert index.move_is_feasible(np.array([0, 0, 0]), 0, 1)


class TestCapacityTracker:
    def test_tracks_moves(self):
        sizes = np.array([2.0, 3.0])
        caps = np.array([5.0, 5.0])
        tracker = CapacityTracker.for_assignment(Assignment([0, 0], 2), sizes, caps)
        assert np.array_equal(tracker.loads, [5.0, 0.0])
        assert tracker.move_fits(0, 1)
        tracker.apply_move(0, 0, 1)
        assert np.array_equal(tracker.loads, [3.0, 2.0])

    def test_move_fits_respects_capacity(self):
        sizes = np.array([4.0, 4.0])
        caps = np.array([5.0, 5.0])
        tracker = CapacityTracker.for_assignment(Assignment([0, 1], 2), sizes, caps)
        assert not tracker.move_fits(0, 1)

    def test_swap_fits(self):
        sizes = np.array([4.0, 1.0])
        caps = np.array([4.5, 4.5])
        tracker = CapacityTracker.for_assignment(Assignment([0, 1], 2), sizes, caps)
        # Swapping 4.0 <-> 1.0 fits both ways around.
        assert tracker.swap_fits(0, 0, 1, 1)
        assert tracker.swap_fits(0, 0, 0, 0)  # same partition trivial
