"""Tests for repro.core.qmatrix: flattening and dense Q construction."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.core.qmatrix import (
    build_q_dense,
    flatten_index,
    quadratic_form,
    unflatten_index,
    y_to_assignment,
)
from repro.netlist.circuit import Circuit
from repro.topology.grid import grid_topology


class TestFlattening:
    def test_formula(self):
        # r = i + j*M (paper: r = i + (j-1)*M, 1-based).
        assert flatten_index(0, 0, 4) == 0
        assert flatten_index(3, 0, 4) == 3
        assert flatten_index(0, 1, 4) == 4
        assert flatten_index(2, 5, 4) == 22

    def test_roundtrip_exhaustive(self):
        m = 5
        for r in range(35):
            i, j = unflatten_index(r, m)
            assert flatten_index(i, j, m) == r

    def test_uniqueness(self):
        m, n = 3, 4
        seen = {flatten_index(i, j, m) for i in range(m) for j in range(n)}
        assert seen == set(range(m * n))

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            flatten_index(4, 0, 4)
        with pytest.raises(IndexError):
            flatten_index(-1, 0, 4)
        with pytest.raises(IndexError):
            unflatten_index(-1, 4)
        with pytest.raises(ValueError):
            flatten_index(0, 0, 0)


class TestBuildQDense:
    def test_is_kron_of_a_and_b(self, paper_problem):
        q = build_q_dense(paper_problem)
        a = paper_problem.connection_matrix()
        b = paper_problem.cost_matrix
        assert np.array_equal(q, np.kron(a, b))

    def test_block_structure_matches_paper(self, paper_problem):
        # Section 3.3: the (b, c) block is B scaled by A(b, c) = 2.
        q = build_q_dense(paper_problem)
        m = 4
        block = q[1 * m : 2 * m, 2 * m : 3 * m]
        assert np.array_equal(block, 2.0 * paper_problem.cost_matrix)

    def test_linear_term_on_diagonal(self, tiny_circuit, paper_topology):
        p = np.arange(12, dtype=float).reshape(4, 3)
        problem = PartitioningProblem(
            tiny_circuit, paper_topology, linear_cost=p, alpha=2.0
        )
        q = build_q_dense(problem)
        for i in range(4):
            for j in range(3):
                r = flatten_index(i, j, 4)
                off_diag_part = problem.beta * 0.0  # A diagonal is zero
                assert q[r, r] == pytest.approx(2.0 * p[i, j] + off_diag_part)

    def test_include_linear_false(self, tiny_circuit, paper_topology):
        p = np.ones((4, 3))
        problem = PartitioningProblem(tiny_circuit, paper_topology, linear_cost=p)
        q = build_q_dense(problem, include_linear=False)
        assert np.trace(q) == 0.0

    def test_beta_scales_quadratic(self, tiny_circuit, paper_topology):
        problem = PartitioningProblem(tiny_circuit, paper_topology, beta=3.0)
        base = PartitioningProblem(tiny_circuit, paper_topology)
        assert np.array_equal(
            build_q_dense(problem), 3.0 * build_q_dense(base)
        )


class TestQuadraticFormConsistency:
    def test_matches_objective_evaluator(self, small_problem):
        """yT Q y must equal the direct objective for random assignments."""
        q = build_q_dense(small_problem)
        evaluator = ObjectiveEvaluator(small_problem)
        rng = np.random.default_rng(3)
        for _ in range(25):
            a = Assignment.uniform_random(
                small_problem.num_components, small_problem.num_partitions, rng
            )
            assert quadratic_form(q, a.to_y_vector()) == pytest.approx(
                evaluator.cost(a)
            )

    def test_with_linear_term(self, tiny_circuit, paper_topology):
        p = np.arange(12, dtype=float).reshape(4, 3)
        problem = PartitioningProblem(
            tiny_circuit, paper_topology, linear_cost=p, alpha=0.5, beta=2.0
        )
        q = build_q_dense(problem)
        evaluator = ObjectiveEvaluator(problem)
        a = Assignment([1, 2, 0], 4)
        assert quadratic_form(q, a.to_y_vector()) == pytest.approx(evaluator.cost(a))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            quadratic_form(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            quadratic_form(np.zeros((2, 2)), np.zeros(3))


def test_y_to_assignment_alias():
    a = Assignment([0, 1], 2)
    assert y_to_assignment(a.to_y_vector(), 2) == a
