"""Tests for repro.core.problem (PartitioningProblem)."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.circuit import Circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


class TestConstruction:
    def test_dimensions(self, paper_problem):
        assert paper_problem.num_components == 3
        assert paper_problem.num_partitions == 4

    def test_matrix_views(self, paper_problem):
        assert paper_problem.connection_matrix().shape == (3, 3)
        assert paper_problem.cost_matrix.shape == (4, 4)
        assert paper_problem.delay_matrix.shape == (4, 4)
        assert np.array_equal(
            paper_problem.sparse_connection_matrix().toarray(),
            paper_problem.connection_matrix(),
        )

    def test_has_timing(self, paper_problem, tiny_circuit, paper_topology):
        assert paper_problem.has_timing
        assert not PartitioningProblem(tiny_circuit, paper_topology).has_timing

    def test_timing_size_mismatch_rejected(self, tiny_circuit, paper_topology):
        with pytest.raises(ValueError, match="timing"):
            PartitioningProblem(tiny_circuit, paper_topology, TimingConstraints(5))

    def test_linear_cost_shape_checked(self, tiny_circuit, paper_topology):
        with pytest.raises(ValueError):
            PartitioningProblem(
                tiny_circuit, paper_topology, linear_cost=np.ones((3, 4))
            )

    def test_negative_linear_cost_rejected(self, tiny_circuit, paper_topology):
        with pytest.raises(ValueError):
            PartitioningProblem(
                tiny_circuit, paper_topology, linear_cost=-np.ones((4, 3))
            )

    def test_negative_alpha_rejected(self, tiny_circuit, paper_topology):
        with pytest.raises(ValueError):
            PartitioningProblem(tiny_circuit, paper_topology, alpha=-1.0)

    def test_oversubscribed_capacity_rejected(self):
        ckt = Circuit()
        ckt.add_component("big", size=100.0)
        topo = grid_topology(1, 2, capacity=10.0)
        with pytest.raises(ValueError, match="exceeds total"):
            PartitioningProblem(ckt, topo)

    def test_has_linear_term(self, tiny_circuit, paper_topology):
        p = np.ones((4, 3))
        with_p = PartitioningProblem(tiny_circuit, paper_topology, linear_cost=p)
        assert with_p.has_linear_term
        zero_alpha = PartitioningProblem(
            tiny_circuit, paper_topology, linear_cost=p, alpha=0.0
        )
        assert not zero_alpha.has_linear_term


class TestNormalization:
    """Section 3: PP(alpha, beta) reduces to PP(1, 1)."""

    def test_identity_fast_path(self, paper_problem):
        assert paper_problem.normalized() is paper_problem

    def test_costs_preserved(self, tiny_circuit, paper_topology):
        p = np.arange(12, dtype=float).reshape(4, 3)
        original = PartitioningProblem(
            tiny_circuit, paper_topology, linear_cost=p, alpha=2.0, beta=3.0
        )
        normalized = original.normalized()
        assert normalized.alpha == 1.0 and normalized.beta == 1.0
        ev_orig = ObjectiveEvaluator(original)
        ev_norm = ObjectiveEvaluator(normalized)
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = Assignment.uniform_random(3, 4, rng)
            assert ev_orig.cost(a) == pytest.approx(ev_norm.cost(a))

    def test_timing_carried_over(self, paper_problem):
        scaled = PartitioningProblem(
            paper_problem.circuit,
            paper_problem.topology,
            paper_problem.timing,
            alpha=2.0,
            beta=2.0,
        )
        assert len(scaled.normalized().timing) == len(paper_problem.timing)


class TestVariants:
    def test_without_timing(self, paper_problem):
        relaxed = paper_problem.without_timing()
        assert not relaxed.has_timing
        assert relaxed.num_components == paper_problem.num_components

    def test_with_zero_interconnect_keeps_delay(self, paper_problem):
        zeroed = paper_problem.with_zero_interconnect()
        assert zeroed.cost_matrix.sum() == 0.0
        # D must survive: the bootstrap solves for timing feasibility.
        assert np.array_equal(zeroed.delay_matrix, paper_problem.delay_matrix)
        assert len(zeroed.timing) == len(paper_problem.timing)


class TestAssignmentValidation:
    def test_accepts_valid(self, paper_problem):
        out = paper_problem.validate_assignment_shape([0, 1, 2])
        assert out.dtype == int

    def test_rejects_wrong_length(self, paper_problem):
        with pytest.raises(ValueError, match="length 3"):
            paper_problem.validate_assignment_shape([0, 1])

    def test_rejects_out_of_range(self, paper_problem):
        with pytest.raises(ValueError):
            paper_problem.validate_assignment_shape([0, 1, 4])

    def test_repr(self, paper_problem):
        text = repr(paper_problem)
        assert "N=3" in text and "M=4" in text
