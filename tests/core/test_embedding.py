"""Tests for repro.core.embedding: Theorems 1 and 2, executable.

The exact solver provides ground truth on small instances, so the
embedding theorems are verified computationally, not just unit-tested.
"""

import itertools

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.constraints import capacity_violations
from repro.core.embedding import (
    DEFAULT_PAPER_PENALTY,
    RegionOfFeasiblePairs,
    embed_timing,
    matrices_coincident_over_region,
    theorem1_penalty,
    verify_theorem2_condition,
)
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.core.qmatrix import build_q_dense, quadratic_form
from repro.netlist.circuit import Circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


def enumerate_assignments(n, m):
    for combo in itertools.product(range(m), repeat=n):
        yield Assignment(list(combo), m)


def brute_minimum(problem, q):
    """(min cost, argmin) of yT Q y over capacity-feasible assignments."""
    sizes = problem.sizes()
    caps = problem.capacities()
    best, best_a = np.inf, None
    for a in enumerate_assignments(problem.num_components, problem.num_partitions):
        if capacity_violations(a, sizes, caps):
            continue
        value = quadratic_form(q, a.to_y_vector())
        if value < best:
            best, best_a = value, a
    return best, best_a


@pytest.fixture
def instance(paper_problem):
    return paper_problem


class TestRegion:
    def test_same_component_pairs_always_in_region(self, instance):
        region = RegionOfFeasiblePairs.from_problem(instance)
        m = instance.num_partitions
        for i1 in range(m):
            for i2 in range(m):
                assert region.contains(i1 + 0 * m, i2 + 0 * m)

    def test_contains_matches_mask(self, instance):
        region = RegionOfFeasiblePairs.from_problem(instance)
        mask = region.feasibility_mask()
        size = mask.shape[0]
        for r1 in range(size):
            for r2 in range(size):
                assert mask[r1, r2] == region.contains(r1, r2)

    def test_is_feasible_assignment_matches_timing(self, instance):
        region = RegionOfFeasiblePairs.from_problem(instance)
        evaluator = ObjectiveEvaluator(instance)
        for a in enumerate_assignments(3, 4):
            expected = evaluator.timing_violation_count(a) == 0
            assert region.is_feasible_assignment(a.part) == expected
            assert region.is_feasible_y(a.to_y_vector()) == expected

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            RegionOfFeasiblePairs(np.zeros((2, 3)), np.zeros((2, 2)))


class TestTheorem1:
    """The exact embedding: QBP_R(Q) == QBP(Q') with U > 2*sum|q|."""

    def test_penalty_strictly_dominates(self, instance):
        q = build_q_dense(instance)
        u = theorem1_penalty(q)
        assert u > 2 * np.abs(q).sum()

    def test_equivalence_on_paper_example(self, instance):
        q = build_q_dense(instance)
        q_prime = embed_timing(q, instance, penalty=None)  # Theorem-1 U

        constrained_best, constrained_arg = np.inf, None
        unconstrained_best, unconstrained_arg = np.inf, None
        region = RegionOfFeasiblePairs.from_problem(instance)
        sizes, caps = instance.sizes(), instance.capacities()
        for a in enumerate_assignments(3, 4):
            if capacity_violations(a, sizes, caps):
                continue
            y = a.to_y_vector()
            value_prime = quadratic_form(q_prime, y)
            if value_prime < unconstrained_best:
                unconstrained_best, unconstrained_arg = value_prime, a
            if region.is_feasible_y(y):
                value = quadratic_form(q, y)
                if value < constrained_best:
                    constrained_best, constrained_arg = value, a

        # Theorem 1: the two problems have the same minimum value and the
        # unconstrained minimiser is feasible for the constrained problem.
        assert unconstrained_best == pytest.approx(constrained_best)
        assert region.is_feasible_y(unconstrained_arg.to_y_vector())

    def test_equivalence_on_random_instances(self):
        rng = np.random.default_rng(5)
        for trial in range(6):
            n, m = 4, 3
            ckt = Circuit(f"rand{trial}")
            for j in range(n):
                ckt.add_component(f"u{j}", size=1.0)
            for j1 in range(n):
                for j2 in range(j1 + 1, n):
                    w = int(rng.integers(0, 4))
                    if w:
                        ckt.add_undirected_wire(j1, j2, float(w))
            topo = grid_topology(1, m, capacity=2.0)
            tc = TimingConstraints(n)
            # Random budgets; chosen loose enough that F_R is nonempty
            # (verified below before asserting anything).
            for j1 in range(n):
                for j2 in range(j1 + 1, n):
                    if rng.random() < 0.5:
                        tc.add(j1, j2, float(rng.integers(1, 3)), symmetric=True)
            problem = PartitioningProblem(ckt, topo, timing=tc)
            region = RegionOfFeasiblePairs.from_problem(problem)
            feasible_exists = any(
                region.is_feasible_y(a.to_y_vector())
                and not capacity_violations(a, problem.sizes(), problem.capacities())
                for a in enumerate_assignments(n, m)
            )
            if not feasible_exists:
                continue
            q = build_q_dense(problem)
            q_prime = embed_timing(q, problem, penalty=None)
            unconstrained_best, arg = brute_minimum(problem, q_prime)
            assert region.is_feasible_y(arg.to_y_vector())
            evaluator = ObjectiveEvaluator(problem)
            constrained_best = min(
                evaluator.cost(a)
                for a in enumerate_assignments(n, m)
                if region.is_feasible_y(a.to_y_vector())
                and not capacity_violations(a, problem.sizes(), problem.capacities())
            )
            assert unconstrained_best == pytest.approx(constrained_best)


class TestTheorem2:
    """Any penalty works if the minimiser lands in F_R."""

    def test_paper_penalty_50_suffices_here(self, instance):
        q = build_q_dense(instance)
        q_hat = embed_timing(q, instance, penalty=DEFAULT_PAPER_PENALTY)
        _, arg = brute_minimum(instance, q_hat)
        # The sufficient condition holds on this instance...
        assert verify_theorem2_condition(instance, arg.to_y_vector())
        # ...so the minimiser is optimal for the constrained problem.
        q_exact = embed_timing(q, instance, penalty=None)
        exact_best, _ = brute_minimum(instance, q_exact)
        assert quadratic_form(q, arg.to_y_vector()) == pytest.approx(exact_best)

    def test_tiny_penalty_can_fail_condition(self, instance):
        # With a penalty below the real wire costs the minimiser may
        # violate timing - and verify_theorem2_condition reports it.
        q = build_q_dense(instance)
        q_hat = embed_timing(q, instance, penalty=0.0)
        _, arg = brute_minimum(instance, q_hat)
        assert not verify_theorem2_condition(instance, arg.to_y_vector())

    def test_coincidence(self, instance):
        q = build_q_dense(instance)
        region = RegionOfFeasiblePairs.from_problem(instance)
        for penalty in (0.0, 50.0, None):
            q_hat = embed_timing(q, instance, penalty=penalty)
            assert matrices_coincident_over_region(q, q_hat, region)

    def test_coincidence_fails_on_region_tampering(self, instance):
        q = build_q_dense(instance)
        region = RegionOfFeasiblePairs.from_problem(instance)
        q_hat = embed_timing(q, instance, penalty=50.0)
        q_bad = q_hat.copy()
        mask = region.feasibility_mask()
        r1, r2 = np.argwhere(mask)[5]
        q_bad[r1, r2] += 1.0
        assert not matrices_coincident_over_region(q, q_bad, region)


class TestEmbedTimingValidation:
    def test_returns_copy(self, instance):
        q = build_q_dense(instance)
        q_hat = embed_timing(q, instance, penalty=50.0)
        assert q_hat is not q
        assert (q_hat != q).any()

    def test_shape_mismatch_rejected(self, instance):
        with pytest.raises(ValueError):
            embed_timing(np.zeros((4, 4)), instance, penalty=50.0)
