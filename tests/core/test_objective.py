"""Tests for repro.core.objective: cost evaluation and deltas."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.circuit import Circuit
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


def brute_cost(problem, assignment):
    """Direct O(N^2) evaluation of the paper's objective."""
    a = problem.connection_matrix()
    b = problem.cost_matrix
    p = problem.linear_cost_matrix()
    part = assignment.part
    total = problem.beta * sum(
        a[j1, j2] * b[part[j1], part[j2]]
        for j1 in range(len(part))
        for j2 in range(len(part))
    )
    if p is not None:
        total += problem.alpha * sum(p[part[j], j] for j in range(len(part)))
    return total


class TestCost:
    def test_matches_brute_force(self, small_problem, rng):
        evaluator = ObjectiveEvaluator(small_problem)
        for _ in range(10):
            a = Assignment.uniform_random(
                small_problem.num_components, small_problem.num_partitions, rng
            )
            assert evaluator.cost(a) == pytest.approx(brute_cost(small_problem, a))

    def test_breakdown_totals(self, tiny_circuit, paper_topology):
        p = np.full((4, 3), 2.0)
        problem = PartitioningProblem(
            tiny_circuit, paper_topology, linear_cost=p, alpha=3.0, beta=2.0
        )
        evaluator = ObjectiveEvaluator(problem)
        a = Assignment([0, 1, 3], 4)
        bd = evaluator.breakdown(a)
        assert bd.linear == pytest.approx(6.0)  # three components at 2.0
        assert bd.total == pytest.approx(3.0 * bd.linear + 2.0 * bd.quadratic)
        assert evaluator.cost(a) == pytest.approx(bd.total)

    def test_colocated_cost_zero(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        # Manhattan distance 0 inside one partition.
        assert evaluator.quadratic_cost(Assignment([2, 2, 2], 4)) == 0.0

    def test_empty_wires(self):
        ckt = Circuit()
        ckt.add_component("a")
        ckt.add_component("b")
        topo = grid_topology(1, 2, capacity=2.0)
        evaluator = ObjectiveEvaluator(PartitioningProblem(ckt, topo))
        assert evaluator.cost(Assignment([0, 1], 2)) == 0.0

    def test_accepts_raw_sequence(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        assert evaluator.cost([0, 1, 3]) == evaluator.cost(Assignment([0, 1, 3], 4))


class TestDeltas:
    """Deltas must exactly match recomputation, for every move/swap."""

    def test_move_delta_exhaustive(self, small_problem, rng):
        evaluator = ObjectiveEvaluator(small_problem)
        a = Assignment.uniform_random(
            small_problem.num_components, small_problem.num_partitions, rng
        )
        base = evaluator.cost(a)
        for j in range(small_problem.num_components):
            for i in range(small_problem.num_partitions):
                moved = a.copy().move(j, i)
                assert evaluator.move_delta(a, j, i) == pytest.approx(
                    evaluator.cost(moved) - base
                ), f"move {j} -> {i}"

    def test_swap_delta_exhaustive(self, small_problem, rng):
        evaluator = ObjectiveEvaluator(small_problem)
        a = Assignment.uniform_random(
            small_problem.num_components, small_problem.num_partitions, rng
        )
        base = evaluator.cost(a)
        n = small_problem.num_components
        for j1 in range(n):
            for j2 in range(j1 + 1, n):
                swapped = a.copy().swap(j1, j2)
                assert evaluator.swap_delta(a, j1, j2) == pytest.approx(
                    evaluator.cost(swapped) - base
                ), f"swap {j1} <-> {j2}"

    def test_noop_move_is_zero(self, small_problem, rng):
        evaluator = ObjectiveEvaluator(small_problem)
        a = Assignment.uniform_random(
            small_problem.num_components, small_problem.num_partitions, rng
        )
        assert evaluator.move_delta(a, 0, a[0]) == 0.0
        assert evaluator.swap_delta(a, 3, 3) == 0.0

    def test_deltas_with_linear_term(self, tiny_circuit, paper_topology):
        p = np.arange(12, dtype=float).reshape(4, 3)
        problem = PartitioningProblem(
            tiny_circuit, paper_topology, linear_cost=p, alpha=2.0
        )
        evaluator = ObjectiveEvaluator(problem)
        a = Assignment([0, 1, 2], 4)
        base = evaluator.cost(a)
        moved = a.copy().move(1, 3)
        assert evaluator.move_delta(a, 1, 3) == pytest.approx(
            evaluator.cost(moved) - base
        )


class TestPenalizedCost:
    def test_no_constraints_equals_cost(self, small_problem, rng):
        evaluator = ObjectiveEvaluator(small_problem)
        a = Assignment.uniform_random(
            small_problem.num_components, small_problem.num_partitions, rng
        )
        assert evaluator.penalized_cost(a, 50.0) == evaluator.cost(a)

    def test_feasible_assignment_no_penalty(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        a = Assignment([0, 1, 3], 4)  # both pairs adjacent
        assert evaluator.penalized_cost(a, 50.0) == evaluator.cost(a)
        assert evaluator.timing_violation_count(a) == 0

    def test_violation_replaces_wire_cost(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        # a at 0, b at 3 (distance 2 > budget 1); c adjacent to b.
        a = Assignment([0, 3, 1], 4)
        assert evaluator.timing_violation_count(a) == 2  # both directions
        cost = evaluator.cost(a)
        # Both directed a<->b constraints violated: each replaces its
        # 5 * B[2] = 10 wire cost with the penalty.
        expected = cost - 2 * 5.0 * 2.0 + 2 * 50.0
        assert evaluator.penalized_cost(a, 50.0) == pytest.approx(expected)

    def test_penalty_monotone(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        a = Assignment([0, 3, 1], 4)
        assert evaluator.penalized_cost(a, 100.0) > evaluator.penalized_cost(a, 50.0)


class TestTimingViolationCount:
    def test_counts_directed(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        assert evaluator.timing_violation_count(Assignment([0, 3, 2], 4)) >= 2

    def test_zero_when_colocated(self, paper_problem):
        evaluator = ObjectiveEvaluator(paper_problem)
        assert evaluator.timing_violation_count(Assignment([0, 0, 0], 4)) == 0
