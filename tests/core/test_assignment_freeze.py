"""Regression tests: hashing an Assignment freezes it (mutability hazard).

Historically ``Assignment`` was mutable *and* content-hashed: putting
one in a set and then calling ``move``/``swap`` silently changed its
hash, corrupting the container.  Hashing now freezes the instance.
"""

import numpy as np
import pytest

from repro.core.assignment import Assignment, AssignmentFrozenError


class TestFreezeOnHash:
    def test_hash_equality_still_holds(self):
        assert hash(Assignment([0, 1], 2)) == hash(Assignment([0, 1], 2))

    def test_unhashed_instance_stays_mutable(self):
        a = Assignment([0, 1, 0], 2)
        assert not a.is_frozen
        a.move(0, 1).swap(1, 2)
        a[2] = 1
        assert a.part.tolist() == [1, 0, 1]

    def test_setitem_after_hash_raises(self):
        a = Assignment([0, 1], 2)
        hash(a)
        with pytest.raises(AssignmentFrozenError):
            a[0] = 1

    def test_move_and_swap_after_hash_raise(self):
        a = Assignment([0, 1], 2)
        {a}  # set membership hashes
        with pytest.raises(AssignmentFrozenError):
            a.move(0, 1)
        with pytest.raises(AssignmentFrozenError):
            a.swap(0, 1)

    def test_backing_array_is_read_only_after_hash(self):
        a = Assignment([0, 1], 2)
        hash(a)
        with pytest.raises(ValueError):
            a.part[0] = 1  # numpy-level writes are blocked too

    def test_set_membership_survives_attempted_mutation(self):
        a = Assignment([0, 1, 0], 2)
        bucket = {a}
        with pytest.raises(AssignmentFrozenError):
            a.move(0, 1)
        assert a in bucket  # hash unchanged, container intact

    def test_copy_of_frozen_is_mutable(self):
        a = Assignment([0, 1], 2)
        hash(a)
        b = a.copy()
        assert not b.is_frozen
        b.move(0, 1)
        assert b.part.tolist() == [1, 1]
        assert a.part.tolist() == [0, 1]

    def test_frozen_view_keeps_original_mutable(self):
        a = Assignment([0, 1], 2)
        snap = a.frozen()
        assert snap.is_frozen
        with pytest.raises(AssignmentFrozenError):
            snap.move(0, 1)
        a.move(0, 1)  # original untouched by the snapshot's freeze
        assert a.part.tolist() == [1, 1]
        assert snap.part.tolist() == [0, 1]

    def test_equality_across_frozen_and_mutable(self):
        a = Assignment([0, 1], 2)
        assert a.frozen() == a
        assert np.array_equal(a.frozen().part, a.part)
