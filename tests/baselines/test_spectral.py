"""Tests for repro.baselines.spectral (Barnes-style baseline)."""

import numpy as np
import pytest

from repro.baselines.spectral import (
    spectral_embedding,
    spectral_partition,
)
from repro.core.constraints import capacity_violations, check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.circuit import Circuit
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


class TestEmbedding:
    def test_shape(self, medium_problem):
        emb = spectral_embedding(medium_problem, 4)
        assert emb.shape == (medium_problem.num_components, 4)

    def test_dimension_capped_at_n_minus_1(self):
        ckt = Circuit()
        for name in "ab":
            ckt.add_component(name)
        ckt.add_undirected_wire("a", "b")
        topo = grid_topology(1, 2, capacity=2.0)
        problem = PartitioningProblem(ckt, topo)
        emb = spectral_embedding(problem, 10)
        assert emb.shape == (2, 1)

    def test_rejects_bad_dimensions(self, medium_problem):
        with pytest.raises(ValueError):
            spectral_embedding(medium_problem, 0)

    def test_fiedler_separates_two_cliques(self):
        # Two 4-cliques joined by one weak edge: the Fiedler vector's
        # sign splits them.
        ckt = Circuit()
        for j in range(8):
            ckt.add_component(f"u{j}")
        for a in range(4):
            for b in range(a + 1, 4):
                ckt.add_undirected_wire(a, b, 5.0)
                ckt.add_undirected_wire(a + 4, b + 4, 5.0)
        ckt.add_undirected_wire(0, 4, 0.1)
        topo = grid_topology(1, 2, capacity=8.0)
        problem = PartitioningProblem(ckt, topo)
        fiedler = spectral_embedding(problem, 1)[:, 0]
        signs = np.sign(fiedler)
        assert len(set(signs[:4])) == 1
        assert len(set(signs[4:])) == 1
        assert signs[0] != signs[4]


class TestSpectralPartition:
    def test_capacity_feasible(self, medium_problem):
        result = spectral_partition(medium_problem, seed=0)
        assert not capacity_violations(
            result.assignment, medium_problem.sizes(), medium_problem.capacities()
        )

    def test_beats_random_on_clustered_circuit(self, medium_problem, rng):
        from repro.core.assignment import Assignment

        result = spectral_partition(medium_problem, seed=0)
        evaluator = ObjectiveEvaluator(medium_problem)
        random_costs = [
            evaluator.cost(
                greedy_feasible_assignment(medium_problem, seed=s)
            )
            for s in range(5)
        ]
        assert result.cost < np.mean(random_costs)

    def test_cost_reported(self, medium_problem):
        result = spectral_partition(medium_problem, seed=0)
        evaluator = ObjectiveEvaluator(medium_problem)
        assert result.cost == pytest.approx(evaluator.cost(result.assignment))

    def test_timing_repair_path(self):
        spec = ClusteredCircuitSpec("sp", num_components=30, num_wires=120, num_clusters=4)
        circuit = generate_clustered_circuit(spec, seed=19)
        topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.4)
        base = PartitioningProblem(circuit, topo)
        ref = greedy_feasible_assignment(base, seed=2)
        timing = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref.part, count=30, min_budget=1.0, seed=5
        )
        problem = PartitioningProblem(circuit, topo, timing=timing)
        result = spectral_partition(problem, seed=0)
        # Repair usually succeeds on this loose instance.
        if result.feasible:
            assert check_feasibility(problem, result.assignment).feasible

    def test_no_repair_flag(self):
        spec = ClusteredCircuitSpec("sp", num_components=20, num_wires=60)
        circuit = generate_clustered_circuit(spec, seed=3)
        topo = grid_topology(2, 2, capacity=circuit.total_size())
        problem = PartitioningProblem(circuit, topo)
        result = spectral_partition(problem, repair_timing=False, seed=0)
        assert result.feasible  # no timing constraints anyway

    def test_deterministic(self, medium_problem):
        a = spectral_partition(medium_problem, seed=4)
        b = spectral_partition(medium_problem, seed=4)
        assert a.assignment == b.assignment
