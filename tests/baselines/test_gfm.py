"""Tests for repro.baselines.gfm (generalized Fiduccia-Mattheyses)."""

import numpy as np
import pytest

from repro.baselines.gfm import gfm_partition
from repro.core.assignment import Assignment
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


@pytest.fixture
def start(medium_problem):
    return greedy_feasible_assignment(medium_problem, seed=3)


class TestBasics:
    def test_never_worsens(self, medium_problem, start):
        result = gfm_partition(medium_problem, start)
        assert result.cost <= result.initial_cost + 1e-9
        assert result.improvement_percent >= 0.0

    def test_final_solution_feasible(self, medium_problem, start):
        result = gfm_partition(medium_problem, start)
        assert result.feasible
        assert check_feasibility(medium_problem, result.assignment).feasible

    def test_cost_is_consistent(self, medium_problem, start):
        result = gfm_partition(medium_problem, start)
        evaluator = ObjectiveEvaluator(medium_problem)
        assert evaluator.cost(result.assignment) == pytest.approx(result.cost)

    def test_runs_to_convergence(self, medium_problem, start):
        result = gfm_partition(medium_problem, start)
        # The last pass by definition produced no improvement.
        assert result.passes >= 1
        rerun = gfm_partition(medium_problem, result.assignment)
        assert rerun.cost == pytest.approx(result.cost)

    def test_actually_improves_random_start(self, medium_problem, start):
        result = gfm_partition(medium_problem, start)
        assert result.cost < result.initial_cost  # plenty of headroom here

    def test_deterministic(self, medium_problem, start):
        a = gfm_partition(medium_problem, start)
        b = gfm_partition(medium_problem, start)
        assert a.assignment == b.assignment

    def test_rejects_infeasible_start(self, paper_problem):
        bad = Assignment([0, 0, 0], 4)  # unit capacities: overloaded
        with pytest.raises(ValueError, match="feasible initial"):
            gfm_partition(paper_problem, bad)

    def test_max_moves_per_pass(self, medium_problem, start):
        result = gfm_partition(medium_problem, start, max_moves_per_pass=5)
        assert result.feasible

    def test_pass_costs_recorded(self, medium_problem, start):
        result = gfm_partition(medium_problem, start)
        assert len(result.pass_costs) == result.passes
        assert result.pass_costs[-1] == pytest.approx(result.cost)


class TestWithTiming:
    @pytest.fixture
    def timed(self):
        spec = ClusteredCircuitSpec("g", num_components=50, num_wires=200, num_clusters=6)
        circuit = generate_clustered_circuit(spec, seed=5)
        topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.3)
        base = PartitioningProblem(circuit, topo)
        ref = greedy_feasible_assignment(base, seed=9)
        timing = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref.part, count=80, min_budget=1.0, seed=3
        )
        problem = PartitioningProblem(circuit, topo, timing=timing)
        return problem, ref

    def test_timing_never_violated(self, timed):
        problem, start = timed
        result = gfm_partition(problem, start)
        evaluator = ObjectiveEvaluator(problem)
        assert evaluator.timing_violation_count(result.assignment) == 0
        assert result.feasible

    def test_timing_constrains_improvement(self, timed):
        problem, start = timed
        constrained = gfm_partition(problem, start)
        relaxed = gfm_partition(problem.without_timing(), start)
        # The paper's Table II vs III shape: timing can only reduce the
        # achievable improvement.
        assert relaxed.cost <= constrained.cost + 1e-9
