"""Tests for repro.baselines.engine (GainEngine incremental state)."""

import numpy as np
import pytest

from repro.baselines.engine import GainEngine
from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


@pytest.fixture
def timed_problem():
    spec = ClusteredCircuitSpec("e", num_components=30, num_wires=120, num_clusters=4)
    circuit = generate_clustered_circuit(spec, seed=17)
    topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.4)
    base = PartitioningProblem(circuit, topo)
    ref = greedy_feasible_assignment(base, seed=4)
    timing = synthesize_feasible_constraints(
        circuit, topo.delay_matrix, ref.part, count=40, min_budget=1.0, seed=6
    )
    problem = PartitioningProblem(circuit, topo, timing=timing)
    return problem, ref


class TestInitialState:
    def test_delta_matches_evaluator(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        evaluator = ObjectiveEvaluator(problem)
        for j in range(problem.num_components):
            for i in range(problem.num_partitions):
                assert engine.delta[j, i] == pytest.approx(
                    evaluator.move_delta(start, j, i)
                )

    def test_timing_block_counts(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        # Row-by-row must agree with the exact TimingIndex answer.
        for j in range(problem.num_components):
            for i in range(problem.num_partitions):
                part = start.part.copy()
                allowed = engine.timing_index.move_is_feasible(part, j, i)
                assert (engine.timing_block[j, i] == 0) == allowed

    def test_audit_passes(self, timed_problem):
        problem, start = timed_problem
        GainEngine(problem, start).audit()


class TestIncrementalUpdates:
    def test_moves_keep_state_consistent(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        rng = np.random.default_rng(0)
        for _ in range(60):
            j = int(rng.integers(0, problem.num_components))
            i = int(rng.integers(0, problem.num_partitions))
            engine.apply_move(j, i)
        engine.audit()

    def test_swaps_keep_state_consistent(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        rng = np.random.default_rng(1)
        for _ in range(30):
            j1, j2 = rng.choice(problem.num_components, size=2, replace=False)
            engine.apply_swap(int(j1), int(j2))
        engine.audit()

    def test_move_returns_exact_delta(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        evaluator = ObjectiveEvaluator(problem)
        before = engine.current_cost()
        delta = engine.apply_move(3, (start[3] + 1) % 4)
        assert engine.current_cost() == pytest.approx(before + delta)

    def test_swap_returns_exact_delta(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        before = engine.current_cost()
        delta = engine.apply_swap(0, 7)
        assert engine.current_cost() == pytest.approx(before + delta)


class TestQueries:
    def test_best_move_is_feasible_and_minimal(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        move = engine.best_move()
        assert move is not None
        j, i, delta = move
        mask = engine.feasible_move_mask()
        assert mask[j, i]
        scores = np.where(mask, engine.delta, np.inf)
        assert delta == pytest.approx(scores.min())

    def test_locked_components_excluded(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        locked = np.ones(problem.num_components, dtype=bool)
        assert engine.best_move(locked) is None

    def test_swap_delta_matrix_exact(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        evaluator = ObjectiveEvaluator(problem)
        swap = engine.swap_delta_matrix()
        rng = np.random.default_rng(2)
        for _ in range(40):
            j1, j2 = rng.choice(problem.num_components, size=2, replace=False)
            assert swap[j1, j2] == pytest.approx(
                evaluator.swap_delta(start, int(j1), int(j2))
            )

    def test_swap_capacity_mask(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        mask = engine.swap_capacity_mask()
        sizes = problem.sizes()
        caps = problem.capacities()
        rng = np.random.default_rng(3)
        for _ in range(40):
            j1, j2 = rng.choice(problem.num_components, size=2, replace=False)
            j1, j2 = int(j1), int(j2)
            i1, i2 = start[j1], start[j2]
            loads = engine.loads
            ok = True
            if i1 != i2:
                ok = (
                    loads[i1] - sizes[j1] + sizes[j2] <= caps[i1] + 1e-9
                    and loads[i2] - sizes[j2] + sizes[j1] <= caps[i2] + 1e-9
                )
            assert bool(mask[j1, j2]) == ok

    def test_exact_swap_feasible_consistent(self, timed_problem):
        problem, start = timed_problem
        engine = GainEngine(problem, start)
        approx = engine.swap_capacity_mask() & engine.swap_timing_mask()
        rng = np.random.default_rng(4)
        mismatches = 0
        for _ in range(60):
            j1, j2 = rng.choice(problem.num_components, size=2, replace=False)
            j1, j2 = int(j1), int(j2)
            exact = engine.exact_swap_feasible(j1, j2)
            if bool(approx[j1, j2]) != exact:
                mismatches += 1
        # The vectorised mask is approximate only for mutually
        # constrained pairs - rare.
        assert mismatches <= 6
