"""Tests for repro.baselines.result."""

import pytest

from repro.baselines.result import InterchangeResult
from repro.core.assignment import Assignment


def make(cost, initial):
    return InterchangeResult(
        assignment=Assignment([0, 1], 2),
        cost=cost,
        initial_cost=initial,
        passes=1,
        moves_applied=0,
        feasible=True,
        elapsed_seconds=0.1,
    )


class TestImprovementPercent:
    def test_basic(self):
        assert make(80.0, 100.0).improvement_percent == pytest.approx(20.0)

    def test_no_improvement(self):
        assert make(100.0, 100.0).improvement_percent == 0.0

    def test_zero_start_guard(self):
        assert make(0.0, 0.0).improvement_percent == 0.0

    def test_negative_when_worse(self):
        # The dataclass itself does not forbid regression; callers do.
        assert make(110.0, 100.0).improvement_percent == pytest.approx(-10.0)
