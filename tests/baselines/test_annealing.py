"""Tests for repro.baselines.annealing."""

import pytest

from repro.baselines.annealing import annealing_partition
from repro.core.assignment import Assignment
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


@pytest.fixture
def start(medium_problem):
    return greedy_feasible_assignment(medium_problem, seed=3)


class TestAnnealing:
    def test_never_worse_than_start(self, medium_problem, start):
        result = annealing_partition(
            medium_problem, start, temperature_steps=10, seed=0
        )
        assert result.cost <= result.initial_cost + 1e-9

    def test_final_feasible(self, medium_problem, start):
        result = annealing_partition(
            medium_problem, start, temperature_steps=10, seed=0
        )
        assert result.feasible
        assert check_feasibility(medium_problem, result.assignment).feasible

    def test_cost_consistent(self, medium_problem, start):
        result = annealing_partition(
            medium_problem, start, temperature_steps=8, seed=1
        )
        evaluator = ObjectiveEvaluator(medium_problem)
        assert evaluator.cost(result.assignment) == pytest.approx(result.cost)

    def test_actually_improves(self, medium_problem, start):
        result = annealing_partition(
            medium_problem, start, temperature_steps=20, seed=0
        )
        assert result.cost < result.initial_cost

    def test_deterministic_given_seed(self, medium_problem, start):
        a = annealing_partition(medium_problem, start, temperature_steps=5, seed=7)
        b = annealing_partition(medium_problem, start, temperature_steps=5, seed=7)
        assert a.assignment == b.assignment

    def test_rejects_infeasible_start(self, paper_problem):
        with pytest.raises(ValueError, match="feasible"):
            annealing_partition(paper_problem, Assignment([0, 0, 0], 4))

    def test_rejects_bad_cooling(self, medium_problem, start):
        with pytest.raises(ValueError, match="cooling"):
            annealing_partition(medium_problem, start, cooling=1.5)

    def test_timing_never_violated(self):
        spec = ClusteredCircuitSpec("an", num_components=30, num_wires=120, num_clusters=4)
        circuit = generate_clustered_circuit(spec, seed=29)
        topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.4)
        base = PartitioningProblem(circuit, topo)
        ref = greedy_feasible_assignment(base, seed=2)
        timing = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref.part, count=40, min_budget=1.0, seed=5
        )
        problem = PartitioningProblem(circuit, topo, timing=timing)
        result = annealing_partition(problem, ref, temperature_steps=10, seed=0)
        evaluator = ObjectiveEvaluator(problem)
        assert evaluator.timing_violation_count(result.assignment) == 0
