"""Tests for repro.baselines.gkl (generalized Kernighan-Lin)."""

import pytest

from repro.baselines.gkl import gkl_partition
from repro.core.assignment import Assignment
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


@pytest.fixture
def start(medium_problem):
    return greedy_feasible_assignment(medium_problem, seed=3)


class TestBasics:
    def test_never_worsens(self, medium_problem, start):
        result = gkl_partition(medium_problem, start)
        assert result.cost <= result.initial_cost + 1e-9

    def test_final_solution_feasible(self, medium_problem, start):
        result = gkl_partition(medium_problem, start)
        assert result.feasible
        assert check_feasibility(medium_problem, result.assignment).feasible

    def test_cost_consistent(self, medium_problem, start):
        result = gkl_partition(medium_problem, start)
        evaluator = ObjectiveEvaluator(medium_problem)
        assert evaluator.cost(result.assignment) == pytest.approx(result.cost)

    def test_outer_loop_cutoff_respected(self, medium_problem, start):
        result = gkl_partition(medium_problem, start, max_outer_loops=2)
        assert result.passes <= 2

    def test_paper_default_is_six(self, medium_problem, start):
        result = gkl_partition(medium_problem, start)
        assert result.passes <= 6

    def test_swap_preserves_partition_sizes(self, medium_problem, start):
        # Swaps preserve the multiset of component counts per partition.
        import numpy as np

        result = gkl_partition(medium_problem, start)
        before = np.bincount(start.part, minlength=16)
        after = np.bincount(result.assignment.part, minlength=16)
        assert sorted(before.tolist()) == sorted(after.tolist())

    def test_deterministic(self, medium_problem, start):
        a = gkl_partition(medium_problem, start)
        b = gkl_partition(medium_problem, start)
        assert a.assignment == b.assignment

    def test_rejects_infeasible_start(self, paper_problem):
        bad = Assignment([0, 0, 0], 4)
        with pytest.raises(ValueError, match="feasible initial"):
            gkl_partition(paper_problem, bad)

    def test_max_swaps_per_pass(self, medium_problem, start):
        result = gkl_partition(medium_problem, start, max_swaps_per_pass=3)
        assert result.feasible


class TestWithTiming:
    @pytest.fixture
    def timed(self):
        spec = ClusteredCircuitSpec("k", num_components=40, num_wires=160, num_clusters=5)
        circuit = generate_clustered_circuit(spec, seed=15)
        topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.3)
        base = PartitioningProblem(circuit, topo)
        ref = greedy_feasible_assignment(base, seed=2)
        timing = synthesize_feasible_constraints(
            circuit, topo.delay_matrix, ref.part, count=60, min_budget=1.0, seed=8
        )
        problem = PartitioningProblem(circuit, topo, timing=timing)
        return problem, ref

    def test_timing_never_violated(self, timed):
        problem, start = timed
        result = gkl_partition(problem, start)
        evaluator = ObjectiveEvaluator(problem)
        assert evaluator.timing_violation_count(result.assignment) == 0

    def test_mutually_constrained_swaps_validated(self, timed):
        # Run longer passes; every applied swap passed the exact check,
        # so the invariant holds throughout (checked at the end).
        problem, start = timed
        result = gkl_partition(problem, start, max_outer_loops=4)
        assert result.feasible
