"""Budgeted + checkpointed Table runs: deadline honoring and lossless resume."""

from __future__ import annotations

import time

import pytest

import repro.eval.harness as harness
from repro.eval.harness import (
    TableCheckpoint,
    run_table,
    shared_initial_solution,
)
from repro.eval.workloads import build_workload
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan, inject_faults

QBP_ITERATIONS = 10
SCALE = 0.15


@pytest.fixture(scope="module")
def workload():
    return build_workload("cktb", scale=SCALE)


@pytest.fixture(scope="module")
def initials(workload):
    return {"cktb": shared_initial_solution(workload, seed=0)}


@pytest.fixture(scope="module")
def reference_rows(workload, initials):
    """Budget-free Table III rows to compare interrupted/resumed runs against."""
    return run_table(
        3,
        scale=SCALE,
        qbp_iterations=QBP_ITERATIONS,
        circuits=["cktb"],
        seed=0,
        workloads={"cktb": workload},
        initials=initials,
    )


def _run(workload, initials, **kwargs):
    return run_table(
        3,
        scale=SCALE,
        qbp_iterations=QBP_ITERATIONS,
        circuits=["cktb"],
        seed=0,
        workloads={"cktb": workload},
        initials=initials,
        **kwargs,
    )


class TestDeadline:
    def test_budgeted_table_honors_deadline(self, workload, initials, tmp_path):
        wall = 0.4
        plan = FaultPlan().slow("qbp.iteration", seconds=0.15)
        budget = Budget(wall_seconds=wall)
        start = time.perf_counter()
        with inject_faults(plan):
            rows = _run(
                workload, initials, budget=budget, checkpoint_dir=tmp_path
            )
        elapsed = time.perf_counter() - start
        # Terminates within ~1s of the deadline despite the slow iterations.
        assert elapsed < wall + 1.0
        assert len(rows) == 1
        row = rows[0]
        assert row.stop_reason == "deadline"
        # The emitted row still holds feasible incumbents for every solver.
        assert row.all_feasible
        assert row.qbp_cost <= row.start_cost + 1e-9


class TestTableResume:
    def test_interrupt_then_resume_matches_budget_free_run(
        self, workload, initials, reference_rows, tmp_path
    ):
        plan = FaultPlan().slow("qbp.iteration", seconds=0.15)
        with inject_faults(plan):
            interrupted = _run(
                workload,
                initials,
                budget=Budget(wall_seconds=0.4),
                checkpoint_dir=tmp_path,
            )
        assert interrupted[0].stop_reason == "deadline"

        resumed = _run(workload, initials, checkpoint_dir=tmp_path)
        assert len(resumed) == len(reference_rows) == 1
        ref, got = reference_rows[0], resumed[0]
        assert got.stop_reason == "completed"
        assert got.start_cost == ref.start_cost
        assert got.qbp_cost == ref.qbp_cost
        assert got.gfm_cost == ref.gfm_cost
        assert got.gkl_cost == ref.gkl_cost

    def test_completed_circuits_never_recomputed(
        self, workload, initials, tmp_path, monkeypatch
    ):
        first = _run(workload, initials, checkpoint_dir=tmp_path)
        assert first[0].stop_reason == "completed"

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("completed circuit was recomputed")

        monkeypatch.setattr(harness, "run_circuit_experiment", explode)
        again = _run(workload, initials, checkpoint_dir=tmp_path)
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]

    def test_parameter_mismatch_invalidates_record(
        self, workload, initials, tmp_path
    ):
        _run(workload, initials, checkpoint_dir=tmp_path)
        stale = TableCheckpoint(
            tmp_path, 3, params={"scale": 0.5, "qbp_iterations": 1, "seed": 9}
        )
        assert stale.completed("cktb") is None  # params differ: must recompute

    def test_clear_removes_all_state(self, workload, initials, tmp_path):
        _run(workload, initials, checkpoint_dir=tmp_path)
        checkpoint = TableCheckpoint(
            tmp_path,
            3,
            params={
                "scale": SCALE,
                "qbp_iterations": QBP_ITERATIONS,
                "seed": 0,
                "methods": ["qbp", "gfm", "gkl"],
            },
        )
        assert checkpoint.completed("cktb") is not None
        checkpoint.clear()
        fresh = TableCheckpoint(
            tmp_path,
            3,
            params={
                "scale": SCALE,
                "qbp_iterations": QBP_ITERATIONS,
                "seed": 0,
                "methods": ["qbp", "gfm", "gkl"],
            },
        )
        assert fresh.completed("cktb") is None
