"""Fault injection: every degradation path exercised deterministically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import capacity_violations
from repro.runtime.checkpoint import QbpCheckpointer
from repro.runtime.faults import (
    FaultPlan,
    InjectedFault,
    inject_faults,
    maybe_fault,
)
from repro.solvers.burkard import (
    BootstrapStallError,
    bootstrap_initial_solution,
    solve_qbp,
)
from repro.solvers.gap import GapInfeasibleError


class TestFaultPlanMechanics:
    def test_inactive_site_is_noop(self):
        maybe_fault("gap.plain")  # no plan active: must not raise

    def test_fail_window(self):
        plan = FaultPlan().fail("site", times=2, after=1)
        with inject_faults(plan):
            maybe_fault("site")  # call 0: before window
            with pytest.raises(InjectedFault):
                maybe_fault("site")  # call 1
            with pytest.raises(InjectedFault):
                maybe_fault("site")  # call 2
            maybe_fault("site")  # call 3: window exhausted
        assert plan.calls["site"] == 4
        assert plan.injected == [("site", 1, "fail"), ("site", 2, "fail")]

    def test_fail_unlimited(self):
        plan = FaultPlan().fail("site", times=None)
        with inject_faults(plan):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    maybe_fault("site")

    def test_custom_error_class(self):
        plan = FaultPlan().fail("site", error=GapInfeasibleError)
        with inject_faults(plan):
            with pytest.raises(GapInfeasibleError):
                maybe_fault("site")

    def test_fail_rate_deterministic_per_seed(self):
        def run(seed):
            plan = FaultPlan(seed=seed).fail_rate("site", 0.5)
            hits = []
            with inject_faults(plan):
                for i in range(50):
                    try:
                        maybe_fault("site")
                        hits.append(False)
                    except InjectedFault:
                        hits.append(True)
            return hits

        assert run(4) == run(4)
        assert run(4) != run(5)
        assert any(run(4)) and not all(run(4))

    def test_plans_nest_and_restore(self):
        outer = FaultPlan().fail("a")
        inner = FaultPlan()
        with inject_faults(outer):
            with inject_faults(inner):
                maybe_fault("a")  # inner plan has no rule for "a"
            with pytest.raises(InjectedFault):
                maybe_fault("a")  # outer restored
        maybe_fault("a")  # nothing active

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().fail_rate("site", 1.5)
        with pytest.raises(ValueError):
            FaultPlan().slow("site", -1.0)


class TestGapLadderDegradation:
    """Satellite: the inner-GAP fallback ladder under injected failures."""

    def test_trust_and_timing_failures_fall_to_plain(
        self, timed_problem, feasible_start
    ):
        plan = (
            FaultPlan()
            .fail("gap.trust", times=None, error=GapInfeasibleError)
            .fail("gap.timing", times=None, error=GapInfeasibleError)
        )
        with inject_faults(plan):
            result = solve_qbp(
                timed_problem, iterations=4, initial=feasible_start, seed=2
            )
        # Both upper rungs were attempted and the plain rung carried the run.
        assert plan.calls["gap.trust"] > 0
        assert plan.calls["gap.timing"] > 0
        assert plan.calls["gap.plain"] > 0
        assert result.stop_reason == "completed"
        # The incumbent is still capacity-feasible (C1 + C3).
        assert not capacity_violations(
            result.assignment,
            timed_problem.sizes(),
            timed_problem.capacities(),
        )

    def test_all_rungs_failing_stalls_with_incumbent(
        self, timed_problem, feasible_start
    ):
        plan = (
            FaultPlan()
            .fail("gap.trust", times=None, error=GapInfeasibleError)
            .fail("gap.timing", times=None, error=GapInfeasibleError)
            .fail("gap.plain", times=None, error=GapInfeasibleError)
        )
        with inject_faults(plan):
            result = solve_qbp(
                timed_problem, iterations=4, initial=feasible_start, seed=2
            )
        assert result.stop_reason == "stalled"
        # The feasible start is never lost: the incumbent IS the start.
        assert np.array_equal(result.assignment.part, feasible_start.part)
        assert not capacity_violations(
            result.assignment,
            timed_problem.sizes(),
            timed_problem.capacities(),
        )


class TestBootstrapRetries:
    def test_transient_attempt_failures_retried(self, timed_problem):
        plan = FaultPlan().fail(
            "bootstrap.attempt", times=2, error=BootstrapStallError
        )
        with inject_faults(plan):
            assignment = bootstrap_initial_solution(
                timed_problem, seed=5, attempts=3
            )
        assert plan.calls["bootstrap.attempt"] == 3  # two failures, one success
        assert not capacity_violations(
            assignment, timed_problem.sizes(), timed_problem.capacities()
        )

    def test_exhausted_attempts_raise_runtime_error(self, timed_problem):
        plan = FaultPlan().fail(
            "bootstrap.attempt", times=None, error=BootstrapStallError
        )
        with inject_faults(plan):
            with pytest.raises(RuntimeError, match="bootstrap failed"):
                bootstrap_initial_solution(timed_problem, seed=5, attempts=2)


class TestCheckpointWriteFaults:
    def test_write_failure_degrades_to_warning(
        self, tmp_path, timed_problem, feasible_start, caplog
    ):
        plan = FaultPlan().fail("checkpoint.write", times=None)
        ck = QbpCheckpointer(tmp_path / "qbp.json", every=1)
        with caplog.at_level("WARNING", logger="repro.solvers.burkard"):
            with inject_faults(plan):
                result = solve_qbp(
                    timed_problem,
                    iterations=3,
                    initial=feasible_start,
                    seed=2,
                    checkpointer=ck,
                )
        assert result.stop_reason == "completed"  # the solve survived
        assert ck.saves == 0
        assert not (tmp_path / "qbp.json").exists()
        assert any("checkpoint write failed" in r.message for r in caplog.records)
