"""Graceful drain: SIGINT/SIGTERM cancel the budget instead of killing."""

from __future__ import annotations

import signal
import threading

from repro.runtime.budget import Budget
from repro.runtime.signals import DRAIN_SIGNALS, DrainState, drain_on_signals


class TestDrainState:
    def test_starts_idle(self):
        state = DrainState()
        assert not state.draining
        assert state.signal_number is None

    def test_mark_records_signal(self):
        state = DrainState()
        state.mark(signal.SIGTERM)
        assert state.draining
        assert state.signal_number == signal.SIGTERM


class TestDrainOnSignals:
    def test_sigterm_cancels_budget_and_keeps_running(self, caplog):
        budget = Budget()
        with caplog.at_level("WARNING", logger="repro.runtime.signals"):
            with drain_on_signals(budget) as drain:
                assert not drain.draining
                signal.raise_signal(signal.SIGTERM)
                # Still here: the handler drained instead of dying.
                assert drain.draining
                assert drain.signal_number == signal.SIGTERM
                assert budget.cancelled
        assert any("draining" in r.message for r in caplog.records)

    def test_sigint_cancels_budget(self):
        budget = Budget()
        with drain_on_signals(budget) as drain:
            signal.raise_signal(signal.SIGINT)
            assert drain.draining
            assert budget.cancelled

    def test_handlers_restored_on_exit(self):
        before = {sig: signal.getsignal(sig) for sig in DRAIN_SIGNALS}
        with drain_on_signals(Budget()):
            for sig in DRAIN_SIGNALS:
                assert signal.getsignal(sig) is not before[sig]
        for sig in DRAIN_SIGNALS:
            assert signal.getsignal(sig) is before[sig]

    def test_handlers_restored_after_drain(self):
        before = {sig: signal.getsignal(sig) for sig in DRAIN_SIGNALS}
        budget = Budget()
        with drain_on_signals(budget):
            signal.raise_signal(signal.SIGTERM)
        for sig in DRAIN_SIGNALS:
            assert signal.getsignal(sig) is before[sig]

    def test_none_budget_is_passthrough(self):
        before = {sig: signal.getsignal(sig) for sig in DRAIN_SIGNALS}
        with drain_on_signals(None) as drain:
            for sig in DRAIN_SIGNALS:
                assert signal.getsignal(sig) is before[sig]
        assert not drain.draining

    def test_non_main_thread_is_passthrough(self):
        budget = Budget()
        results = {}

        def target():
            with drain_on_signals(budget) as drain:
                results["handler"] = signal.getsignal(signal.SIGTERM)
                results["draining"] = drain.draining

        before = signal.getsignal(signal.SIGTERM)
        worker = threading.Thread(target=target)
        worker.start()
        worker.join()
        assert results["handler"] is before  # no handler installed
        assert results["draining"] is False
        assert not budget.cancelled

    def test_drain_does_not_trip_unrelated_budget(self):
        # The cancel is scoped to the budget that was passed in.
        other = Budget()
        with drain_on_signals(Budget()):
            signal.raise_signal(signal.SIGTERM)
        assert not other.cancelled
