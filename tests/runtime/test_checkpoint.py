"""Checkpoints: atomic writes, corruption handling, bit-exact QBP resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime.budget import Budget
from repro.runtime.checkpoint import (
    QBP_CHECKPOINT_FORMAT,
    CheckpointError,
    QbpCheckpoint,
    QbpCheckpointer,
    atomic_write_json,
    load_json_checkpoint,
    load_qbp_checkpoint,
    save_qbp_checkpoint,
    try_load_json_checkpoint,
    try_load_qbp_checkpoint,
)
from repro.runtime.faults import corrupt_json_file
from repro.solvers.burkard import solve_qbp


class TestAtomicJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a" / "b" / "ck.json"  # parents created on demand
        atomic_write_json(path, {"format": "x-v1", "value": [1, 2, 3]})
        assert load_json_checkpoint(path, expected_format="x-v1")["value"] == [1, 2, 3]

    def test_missing_file_strict_vs_forgiving(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(CheckpointError, match="does not exist"):
            load_json_checkpoint(path, expected_format="x-v1")
        assert try_load_json_checkpoint(path, expected_format="x-v1") is None

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "other-v1"})
        with pytest.raises(CheckpointError, match="format"):
            load_json_checkpoint(path, expected_format="x-v1")

    def test_corrupted_file(self, tmp_path, caplog):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "x-v1", "data": list(range(100))})
        corrupt_json_file(path, seed=3)
        with pytest.raises(CheckpointError):
            load_json_checkpoint(path, expected_format="x-v1")
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            assert try_load_json_checkpoint(path, expected_format="x-v1") is None
        assert any("unusable checkpoint" in r.message for r in caplog.records)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "x-v1"})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


def _sample_checkpoint() -> QbpCheckpoint:
    rng = np.random.default_rng(9)
    return QbpCheckpoint(
        iteration=7,
        part=np.array([0, 1, 2, 3, 0]),
        h=rng.normal(size=(5, 4)),
        best_part=np.array([0, 1, 2, 3, 1]),
        best_pen=12.5,
        best_feas_part=np.array([0, 1, 2, 3, 2]),
        best_feas_cost=15.0,
        shadow_part=None,
        history=[20.0, 14.0, 12.5],
        improvements=[1, 3],
        rng_state=rng.bit_generator.state,
        label="sample",
    )


class TestQbpCheckpointRoundtrip:
    def test_payload_roundtrip_is_exact(self, tmp_path):
        original = _sample_checkpoint()
        path = tmp_path / "qbp.json"
        save_qbp_checkpoint(path, original)
        loaded = load_qbp_checkpoint(path)
        assert loaded.iteration == original.iteration
        assert np.array_equal(loaded.part, original.part)
        assert np.array_equal(loaded.h, original.h)  # bit-exact float roundtrip
        assert np.array_equal(loaded.best_part, original.best_part)
        assert loaded.best_pen == original.best_pen
        assert np.array_equal(loaded.best_feas_part, original.best_feas_part)
        assert loaded.shadow_part is None
        assert loaded.history == original.history
        assert loaded.improvements == original.improvements
        assert loaded.rng_state == original.rng_state
        assert loaded.label == "sample"

    def test_payload_format_tag(self, tmp_path):
        path = tmp_path / "qbp.json"
        save_qbp_checkpoint(path, _sample_checkpoint())
        assert json.loads(path.read_text())["format"] == QBP_CHECKPOINT_FORMAT

    def test_malformed_shapes_rejected(self):
        payload = _sample_checkpoint().to_payload()
        payload["h"] = [[1.0, 2.0]]  # h rows must match part length
        with pytest.raises(CheckpointError, match="inconsistent"):
            QbpCheckpoint.from_payload(payload)

    def test_missing_key_rejected(self):
        payload = _sample_checkpoint().to_payload()
        del payload["best_pen"]
        with pytest.raises(CheckpointError, match="malformed"):
            QbpCheckpoint.from_payload(payload)

    def test_corrupted_qbp_checkpoint_forgiving(self, tmp_path):
        path = tmp_path / "qbp.json"
        save_qbp_checkpoint(path, _sample_checkpoint())
        corrupt_json_file(path, seed=1)
        assert try_load_qbp_checkpoint(path) is None
        with pytest.raises(CheckpointError):
            load_qbp_checkpoint(path)


class TestQbpCheckpointer:
    def test_due_schedule(self, tmp_path):
        ck = QbpCheckpointer(tmp_path / "x.json", every=5)
        assert [k for k in range(1, 16) if ck.due(k)] == [5, 10, 15]

    def test_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            QbpCheckpointer(tmp_path / "x.json", every=0)

    def test_save_load_clear(self, tmp_path):
        ck = QbpCheckpointer(tmp_path / "x.json", every=1, label="ckt")
        assert ck.load() is None
        ck.save(_sample_checkpoint())
        assert ck.saves == 1
        assert ck.load().iteration == 7
        ck.clear()
        assert ck.load() is None
        ck.clear()  # idempotent


class TestSolveQbpResume:
    """Killing a run mid-flight and resuming must be bit-exact."""

    @pytest.fixture(scope="class")
    def reference(self, timed_problem, feasible_start):
        return solve_qbp(
            timed_problem, iterations=10, initial=feasible_start, seed=7
        )

    def test_cancel_then_resume_matches_uninterrupted(
        self, tmp_path, timed_problem, feasible_start, reference
    ):
        path = tmp_path / "qbp.json"
        budget = Budget()

        def cancel_at_4(k, assignment, pen):
            if k == 4:
                budget.cancel()

        interrupted = solve_qbp(
            timed_problem,
            iterations=10,
            initial=feasible_start,
            seed=7,
            budget=budget,
            checkpointer=QbpCheckpointer(path, every=1),
            callback=cancel_at_4,
        )
        assert interrupted.stop_reason == "cancelled"
        assert interrupted.iterations < 10

        resume = try_load_qbp_checkpoint(path)
        assert resume is not None
        assert resume.iteration == 4

        resumed = solve_qbp(
            timed_problem,
            iterations=10,
            initial=feasible_start,
            seed=7,
            resume=resume,
        )
        assert resumed.stop_reason == "completed"
        assert resumed.cost == reference.cost
        assert resumed.penalized_cost == reference.penalized_cost
        assert resumed.best_feasible_cost == reference.best_feasible_cost
        assert np.array_equal(resumed.assignment.part, reference.assignment.part)
        assert resumed.history == reference.history

    def test_resume_rejects_shape_mismatch(
        self, tmp_path, timed_problem, small_problem, feasible_start
    ):
        path = tmp_path / "qbp.json"
        solve_qbp(
            timed_problem,
            iterations=2,
            initial=feasible_start,
            seed=7,
            checkpointer=QbpCheckpointer(path, every=1),
        )
        resume = try_load_qbp_checkpoint(path)
        with pytest.raises(ValueError, match="does not match"):
            solve_qbp(small_problem, iterations=2, seed=7, resume=resume)

    def test_natural_completion_writes_final_snapshot(
        self, tmp_path, timed_problem, feasible_start
    ):
        path = tmp_path / "qbp.json"
        ck = QbpCheckpointer(path, every=100)  # never due mid-run
        solve_qbp(
            timed_problem, iterations=3, initial=feasible_start, seed=7,
            checkpointer=ck,
        )
        assert ck.saves == 1  # the final-iteration snapshot
        assert ck.load().iteration == 3
