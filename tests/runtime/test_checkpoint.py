"""Checkpoints: atomic writes, corruption handling, bit-exact QBP resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime.budget import Budget
from repro.obs.telemetry import Telemetry
from repro.runtime.checkpoint import (
    QBP_CHECKPOINT_FORMAT,
    CheckpointError,
    QbpCheckpoint,
    QbpCheckpointer,
    atomic_write_json,
    checkpoint_backup_path,
    load_json_checkpoint,
    load_qbp_checkpoint,
    save_qbp_checkpoint,
    try_load_json_checkpoint,
    try_load_qbp_checkpoint,
)
from repro.runtime.faults import corrupt_json_file
from repro.solvers.burkard import solve_qbp


class TestAtomicJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a" / "b" / "ck.json"  # parents created on demand
        atomic_write_json(path, {"format": "x-v1", "value": [1, 2, 3]})
        assert load_json_checkpoint(path, expected_format="x-v1")["value"] == [1, 2, 3]

    def test_missing_file_strict_vs_forgiving(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(CheckpointError, match="does not exist"):
            load_json_checkpoint(path, expected_format="x-v1")
        assert try_load_json_checkpoint(path, expected_format="x-v1") is None

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "other-v1"})
        with pytest.raises(CheckpointError, match="format"):
            load_json_checkpoint(path, expected_format="x-v1")

    def test_corrupted_file(self, tmp_path, caplog):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "x-v1", "data": list(range(100))})
        corrupt_json_file(path, seed=3)
        with pytest.raises(CheckpointError):
            load_json_checkpoint(path, expected_format="x-v1")
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            assert try_load_json_checkpoint(path, expected_format="x-v1") is None
        assert any("unusable checkpoint" in r.message for r in caplog.records)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "x-v1"})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


class TestTornCheckpointSalvage:
    """A damaged primary snapshot falls back to the ``.bak`` generation."""

    @staticmethod
    def _write_two_generations(path):
        atomic_write_json(path, {"format": "x-v1", "iteration": 4}, backup=True)
        atomic_write_json(path, {"format": "x-v1", "iteration": 5}, backup=True)

    def test_backup_rotation(self, tmp_path):
        path = tmp_path / "ck.json"
        self._write_two_generations(path)
        backup = checkpoint_backup_path(path)
        assert backup.name == "ck.json.bak"
        assert json.loads(path.read_text())["iteration"] == 5
        assert json.loads(backup.read_text())["iteration"] == 4

    def test_no_backup_without_flag(self, tmp_path):
        path = tmp_path / "ck.json"
        atomic_write_json(path, {"format": "x-v1", "iteration": 1})
        atomic_write_json(path, {"format": "x-v1", "iteration": 2})
        assert not checkpoint_backup_path(path).exists()

    def test_torn_primary_salvages_backup(self, tmp_path, caplog):
        path = tmp_path / "ck.json"
        self._write_two_generations(path)
        corrupt_json_file(path, seed=5)
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            payload = try_load_json_checkpoint(path, expected_format="x-v1")
        assert payload is not None and payload["iteration"] == 4
        assert any("previous good snapshot" in r.message for r in caplog.records)

    def test_missing_primary_salvages_backup(self, tmp_path):
        path = tmp_path / "ck.json"
        self._write_two_generations(path)
        path.unlink()
        payload = try_load_json_checkpoint(path, expected_format="x-v1")
        assert payload is not None and payload["iteration"] == 4

    def test_salvage_can_be_disabled(self, tmp_path):
        path = tmp_path / "ck.json"
        self._write_two_generations(path)
        corrupt_json_file(path, seed=5)
        assert (
            try_load_json_checkpoint(path, expected_format="x-v1", salvage=False)
            is None
        )

    def test_both_generations_torn_gives_up(self, tmp_path, caplog):
        path = tmp_path / "ck.json"
        self._write_two_generations(path)
        corrupt_json_file(path, seed=5)
        corrupt_json_file(checkpoint_backup_path(path), seed=6)
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            assert try_load_json_checkpoint(path, expected_format="x-v1") is None
        assert any("backup checkpoint" in r.message for r in caplog.records)

    def test_salvage_emits_typed_events(self, tmp_path):
        tel = Telemetry.enabled_default()
        path = tmp_path / "ck.json"
        self._write_two_generations(path)
        corrupt_json_file(path, seed=5)
        try_load_json_checkpoint(
            path, expected_format="x-v1", label="ckta", telemetry=tel
        )
        statuses = [
            (e.label, e.status)
            for e in tel.events()
            if getattr(e, "kind", "") == "checkpoint"
        ]
        assert statuses == [("ckta", "corrupt"), ("ckta", "salvaged")]
        counters = tel.metrics_snapshot()["counters"]
        assert counters["checkpoint.corrupt"] == 1.0
        assert counters["checkpoint.salvaged"] == 1.0


def _sample_checkpoint() -> QbpCheckpoint:
    rng = np.random.default_rng(9)
    return QbpCheckpoint(
        iteration=7,
        part=np.array([0, 1, 2, 3, 0]),
        h=rng.normal(size=(5, 4)),
        best_part=np.array([0, 1, 2, 3, 1]),
        best_pen=12.5,
        best_feas_part=np.array([0, 1, 2, 3, 2]),
        best_feas_cost=15.0,
        shadow_part=None,
        history=[20.0, 14.0, 12.5],
        improvements=[1, 3],
        rng_state=rng.bit_generator.state,
        label="sample",
    )


class TestQbpCheckpointRoundtrip:
    def test_payload_roundtrip_is_exact(self, tmp_path):
        original = _sample_checkpoint()
        path = tmp_path / "qbp.json"
        save_qbp_checkpoint(path, original)
        loaded = load_qbp_checkpoint(path)
        assert loaded.iteration == original.iteration
        assert np.array_equal(loaded.part, original.part)
        assert np.array_equal(loaded.h, original.h)  # bit-exact float roundtrip
        assert np.array_equal(loaded.best_part, original.best_part)
        assert loaded.best_pen == original.best_pen
        assert np.array_equal(loaded.best_feas_part, original.best_feas_part)
        assert loaded.shadow_part is None
        assert loaded.history == original.history
        assert loaded.improvements == original.improvements
        assert loaded.rng_state == original.rng_state
        assert loaded.label == "sample"

    def test_payload_format_tag(self, tmp_path):
        path = tmp_path / "qbp.json"
        save_qbp_checkpoint(path, _sample_checkpoint())
        assert json.loads(path.read_text())["format"] == QBP_CHECKPOINT_FORMAT

    def test_malformed_shapes_rejected(self):
        payload = _sample_checkpoint().to_payload()
        payload["h"] = [[1.0, 2.0]]  # h rows must match part length
        with pytest.raises(CheckpointError, match="inconsistent"):
            QbpCheckpoint.from_payload(payload)

    def test_missing_key_rejected(self):
        payload = _sample_checkpoint().to_payload()
        del payload["best_pen"]
        with pytest.raises(CheckpointError, match="malformed"):
            QbpCheckpoint.from_payload(payload)

    def test_corrupted_qbp_checkpoint_forgiving(self, tmp_path):
        path = tmp_path / "qbp.json"
        save_qbp_checkpoint(path, _sample_checkpoint())
        corrupt_json_file(path, seed=1)
        assert try_load_qbp_checkpoint(path) is None
        with pytest.raises(CheckpointError):
            load_qbp_checkpoint(path)


class TestQbpCheckpointer:
    def test_due_schedule(self, tmp_path):
        ck = QbpCheckpointer(tmp_path / "x.json", every=5)
        assert [k for k in range(1, 16) if ck.due(k)] == [5, 10, 15]

    def test_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            QbpCheckpointer(tmp_path / "x.json", every=0)

    def test_save_load_clear(self, tmp_path):
        ck = QbpCheckpointer(tmp_path / "x.json", every=1, label="ckt")
        assert ck.load() is None
        ck.save(_sample_checkpoint())
        assert ck.saves == 1
        assert ck.load().iteration == 7
        ck.clear()
        assert ck.load() is None
        ck.clear()  # idempotent

    def test_save_rotates_backup_and_clear_removes_it(self, tmp_path):
        path = tmp_path / "x.json"
        ck = QbpCheckpointer(path, every=1, label="ckt")
        first = _sample_checkpoint()
        ck.save(first)
        second = _sample_checkpoint()
        second.iteration = 8
        ck.save(second)
        backup = checkpoint_backup_path(path)
        assert backup.exists()
        assert json.loads(backup.read_text())["iteration"] == 7
        ck.clear()
        assert not path.exists() and not backup.exists()

    def test_torn_snapshot_resumes_from_previous_generation(self, tmp_path, caplog):
        path = tmp_path / "x.json"
        ck = QbpCheckpointer(path, every=1, label="ckt")
        ck.save(_sample_checkpoint())
        second = _sample_checkpoint()
        second.iteration = 8
        ck.save(second)
        corrupt_json_file(path, seed=2)  # latest generation lands torn
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            salvaged = ck.load()
        assert salvaged is not None
        assert salvaged.iteration == 7  # one interval of progress lost, not the run
        assert np.array_equal(salvaged.part, _sample_checkpoint().part)


class TestSolveQbpResume:
    """Killing a run mid-flight and resuming must be bit-exact."""

    @pytest.fixture(scope="class")
    def reference(self, timed_problem, feasible_start):
        return solve_qbp(
            timed_problem, iterations=10, initial=feasible_start, seed=7
        )

    def test_cancel_then_resume_matches_uninterrupted(
        self, tmp_path, timed_problem, feasible_start, reference
    ):
        path = tmp_path / "qbp.json"
        budget = Budget()

        def cancel_at_4(k, assignment, pen):
            if k == 4:
                budget.cancel()

        interrupted = solve_qbp(
            timed_problem,
            iterations=10,
            initial=feasible_start,
            seed=7,
            budget=budget,
            checkpointer=QbpCheckpointer(path, every=1),
            callback=cancel_at_4,
        )
        assert interrupted.stop_reason == "cancelled"
        assert interrupted.iterations < 10

        resume = try_load_qbp_checkpoint(path)
        assert resume is not None
        assert resume.iteration == 4

        resumed = solve_qbp(
            timed_problem,
            iterations=10,
            initial=feasible_start,
            seed=7,
            resume=resume,
        )
        assert resumed.stop_reason == "completed"
        assert resumed.cost == reference.cost
        assert resumed.penalized_cost == reference.penalized_cost
        assert resumed.best_feasible_cost == reference.best_feasible_cost
        assert np.array_equal(resumed.assignment.part, reference.assignment.part)
        assert resumed.history == reference.history

    def test_resume_rejects_shape_mismatch(
        self, tmp_path, timed_problem, small_problem, feasible_start
    ):
        path = tmp_path / "qbp.json"
        solve_qbp(
            timed_problem,
            iterations=2,
            initial=feasible_start,
            seed=7,
            checkpointer=QbpCheckpointer(path, every=1),
        )
        resume = try_load_qbp_checkpoint(path)
        with pytest.raises(ValueError, match="does not match"):
            solve_qbp(small_problem, iterations=2, seed=7, resume=resume)

    def test_natural_completion_writes_final_snapshot(
        self, tmp_path, timed_problem, feasible_start
    ):
        path = tmp_path / "qbp.json"
        ck = QbpCheckpointer(path, every=100)  # never due mid-run
        solve_qbp(
            timed_problem, iterations=3, initial=feasible_start, seed=7,
            checkpointer=ck,
        )
        assert ck.saves == 1  # the final-iteration snapshot
        assert ck.load().iteration == 3
