"""SolverSupervisor: ladders, retries, backoff, audit trails, budgets."""

from __future__ import annotations

import pytest

from repro.runtime.budget import Budget, BudgetExceededError
from repro.runtime.supervisor import (
    Attempt,
    SolverSupervisor,
    SupervisorExhaustedError,
)


class Flaky:
    """A callable failing its first ``failures`` invocations."""

    def __init__(self, failures: int, error=RuntimeError("transient")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self, budget):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return f"ok after {self.calls}"


class TestLadder:
    def test_first_rung_succeeds(self):
        outcome = SolverSupervisor(
            [
                Attempt("primary", lambda b: "primary-value"),
                Attempt("fallback", lambda b: "fallback-value"),
            ]
        ).run()
        assert outcome.value == "primary-value"
        assert outcome.attempt == "primary"
        assert not outcome.degraded
        assert [r.status for r in outcome.records] == ["ok"]

    def test_descends_on_transient_failure(self):
        def boom(budget):
            raise RuntimeError("nope")

        outcome = SolverSupervisor(
            [Attempt("primary", boom), Attempt("fallback", lambda b: 42)]
        ).run()
        assert outcome.value == 42
        assert outcome.attempt == "fallback"
        assert outcome.degraded
        assert [(r.name, r.status) for r in outcome.records] == [
            ("primary", "error"),
            ("fallback", "ok"),
        ]
        assert "nope" in outcome.records[0].error

    def test_non_transient_propagates(self):
        def boom(budget):
            raise ValueError("programming error")

        supervisor = SolverSupervisor(
            [Attempt("primary", boom), Attempt("fallback", lambda b: 42)],
            transient=(RuntimeError,),
        )
        with pytest.raises(ValueError):
            supervisor.run()

    def test_exhaustion_carries_audit(self):
        def boom(budget):
            raise RuntimeError("always")

        supervisor = SolverSupervisor(
            [Attempt("a", boom, retries=1), Attempt("b", boom)]
        )
        with pytest.raises(SupervisorExhaustedError) as excinfo:
            supervisor.run()
        records = excinfo.value.records
        assert [(r.name, r.try_index) for r in records] == [
            ("a", 0),
            ("a", 1),
            ("b", 0),
        ]
        assert all(r.status == "error" for r in records)
        assert "a#0" in str(excinfo.value)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            SolverSupervisor([])


class TestRetries:
    def test_retry_until_success(self):
        flaky = Flaky(failures=2)
        outcome = SolverSupervisor([Attempt("flaky", flaky, retries=3)]).run()
        assert outcome.value == "ok after 3"
        assert flaky.calls == 3
        assert [r.status for r in outcome.records] == ["error", "error", "ok"]
        assert outcome.degraded

    def test_exponential_backoff_schedule(self):
        sleeps = []
        flaky = Flaky(failures=3)
        SolverSupervisor(
            [Attempt("flaky", flaky, retries=3, backoff_seconds=0.5)],
            sleep=sleeps.append,
        ).run()
        # Backoff doubles per retry: 0.5, 1.0, 2.0 (none after success).
        assert sleeps == [0.5, 1.0, 2.0]

    def test_no_backoff_sleep_when_zero(self):
        sleeps = []
        flaky = Flaky(failures=1)
        SolverSupervisor(
            [Attempt("flaky", flaky, retries=1, backoff_seconds=0.0)],
            sleep=sleeps.append,
        ).run()
        assert sleeps == []


class TestBudgets:
    def test_exhausted_shared_budget_skips_and_raises(self):
        budget = Budget(wall_seconds=1.0)
        budget.cancel()  # expired before the ladder starts
        calls = []
        supervisor = SolverSupervisor(
            [Attempt("never", lambda b: calls.append(1))], budget=budget
        )
        with pytest.raises(BudgetExceededError):
            supervisor.run()
        assert calls == []

    def test_attempt_timeout_descends_ladder(self):
        def impatient(budget):
            assert budget is not None
            raise BudgetExceededError("deadline")  # as a cooperative solver would

        outcome = SolverSupervisor(
            [
                Attempt("slow", impatient, timeout_seconds=0.01),
                Attempt("fast", lambda b: "rescued"),
            ]
        ).run()
        assert outcome.value == "rescued"
        assert [(r.name, r.status) for r in outcome.records] == [
            ("slow", "timeout"),
            ("fast", "ok"),
        ]

    def test_attempt_gets_scoped_budget(self):
        seen = {}

        def probe(budget):
            seen["budget"] = budget
            return 1

        shared = Budget(wall_seconds=100.0)
        SolverSupervisor(
            [Attempt("probe", probe, timeout_seconds=5.0)], budget=shared
        ).run()
        assert seen["budget"].wall_seconds == pytest.approx(5.0, abs=0.5)

    def test_no_budget_no_timeout_passes_none(self):
        seen = {}

        def probe(budget):
            seen["budget"] = budget
            return 1

        SolverSupervisor([Attempt("probe", probe)]).run()
        assert seen["budget"] is None

    def test_shared_budget_expiry_mid_attempt_stops_ladder(self):
        clock = MutableClock()
        budget = Budget(wall_seconds=5.0, clock=clock)

        def drains(attempt_budget):
            clock.now += 10.0  # the attempt burns through the shared budget
            attempt_budget.raise_if_exceeded()

        supervisor = SolverSupervisor(
            [Attempt("drains", drains), Attempt("never", lambda b: "unreached")],
            budget=budget,
        )
        with pytest.raises(BudgetExceededError):
            supervisor.run()


class MutableClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now
