"""Seed determinism regression tests (same seed => bit-identical results)."""

from __future__ import annotations

import numpy as np

from repro.solvers.burkard import solve_qbp, solve_qbp_multistart


def _identical(a, b):
    assert a.cost == b.cost
    assert a.penalized_cost == b.penalized_cost
    assert a.best_feasible_cost == b.best_feasible_cost
    assert np.array_equal(a.assignment.part, b.assignment.part)
    if a.best_feasible_assignment is None:
        assert b.best_feasible_assignment is None
    else:
        assert np.array_equal(
            a.best_feasible_assignment.part, b.best_feasible_assignment.part
        )
    assert a.history == b.history
    assert a.stop_reason == b.stop_reason


class TestSolveQbpDeterminism:
    def test_same_seed_bit_identical(self, timed_problem, feasible_start):
        runs = [
            solve_qbp(
                timed_problem, iterations=8, initial=feasible_start, seed=123
            )
            for _ in range(2)
        ]
        _identical(runs[0], runs[1])

    def test_same_seed_with_repair_iterates(self, timed_problem, feasible_start):
        runs = [
            solve_qbp(
                timed_problem,
                iterations=8,
                initial=feasible_start,
                seed=321,
                repair_iterates=True,
                repair_moves=500,
            )
            for _ in range(2)
        ]
        _identical(runs[0], runs[1])

    def test_no_initial_still_deterministic(self, timed_problem):
        runs = [
            solve_qbp(timed_problem, iterations=6, seed=77) for _ in range(2)
        ]
        _identical(runs[0], runs[1])


class TestMultistartDeterminism:
    def test_same_seed_bit_identical(self, timed_problem):
        runs = [
            solve_qbp_multistart(
                timed_problem, restarts=2, iterations=5, seed=55
            )
            for _ in range(2)
        ]
        _identical(runs[0], runs[1])
