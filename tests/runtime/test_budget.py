"""Budget semantics: fake clocks, cancellation, caps, scoping."""

from __future__ import annotations

import pytest

from repro.runtime.budget import (
    STOP_CANCELLED,
    STOP_COMPLETED,
    STOP_DEADLINE,
    STOP_REASONS,
    STOP_STALLED,
    Budget,
    BudgetExceededError,
    budget_stop,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestVocabulary:
    def test_stop_reasons_enumeration(self):
        assert STOP_REASONS == ("completed", "deadline", "cancelled", "stalled")
        assert STOP_COMPLETED == "completed"
        assert STOP_DEADLINE == "deadline"
        assert STOP_CANCELLED == "cancelled"
        assert STOP_STALLED == "stalled"


class TestDeadline:
    def test_within_budget(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert budget.check() is None
        assert not budget.expired()
        assert budget.remaining_seconds() == pytest.approx(10.0)

    def test_deadline_reached(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        clock.advance(9.99)
        assert budget.check() is None
        clock.advance(0.02)
        assert budget.check() == STOP_DEADLINE
        assert budget.expired()
        assert budget.elapsed_seconds() == pytest.approx(10.01)

    def test_unbounded_never_expires(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        clock.advance(1e9)
        assert budget.check() is None
        assert budget.remaining_seconds() == float("inf")

    def test_restart_resets_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=5.0, clock=clock)
        clock.advance(6.0)
        assert budget.expired()
        assert budget.restart() is budget
        assert not budget.expired()
        assert budget.remaining_seconds() == pytest.approx(5.0)

    def test_raise_if_exceeded_carries_reason(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock)
        budget.raise_if_exceeded()  # within budget: no-op
        clock.advance(2.0)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.raise_if_exceeded()
        assert excinfo.value.reason == STOP_DEADLINE
        assert isinstance(excinfo.value, RuntimeError)

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(wall_seconds=0.0)
        with pytest.raises(ValueError):
            Budget(wall_seconds=-1.0)
        with pytest.raises(ValueError):
            Budget(max_iterations=0)


class TestCancel:
    def test_cancel_wins_over_deadline(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock)
        clock.advance(5.0)
        budget.cancel()
        assert budget.check() == STOP_CANCELLED

    def test_cancel_is_idempotent_and_sticky(self):
        budget = Budget()
        assert not budget.cancelled
        budget.cancel()
        budget.cancel()
        assert budget.cancelled
        assert budget.check() == STOP_CANCELLED
        # restart() does not clear cancellation
        budget.restart()
        assert budget.cancelled


class TestIterationCap:
    def test_no_cap(self):
        assert Budget().iteration_cap(100) == 100

    def test_cap_applies(self):
        assert Budget(max_iterations=7).iteration_cap(100) == 7

    def test_cap_never_raises_default(self):
        assert Budget(max_iterations=500).iteration_cap(100) == 100


class TestScoped:
    def test_scoped_takes_tighter_deadline(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        child = budget.scoped(2.0)
        assert child.wall_seconds == pytest.approx(2.0)
        clock.advance(2.5)
        assert child.check() == STOP_DEADLINE
        assert budget.check() is None

    def test_scoped_inherits_parent_remaining(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        clock.advance(9.0)
        child = budget.scoped(60.0)
        assert child.wall_seconds == pytest.approx(1.0)

    def test_scoped_shares_cancel_flag(self):
        budget = Budget()
        child = budget.scoped(5.0)
        budget.cancel()
        assert child.check() == STOP_CANCELLED
        other = Budget().scoped(5.0)
        other.cancel()  # cancelling a child also cancels its parent line
        assert other.cancelled

    def test_scoped_unbounded_parent_no_timeout(self):
        child = Budget().scoped(None)
        assert child.wall_seconds is None


class TestBudgetStop:
    def test_none_budget(self):
        assert budget_stop(None) is None

    def test_passthrough(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock)
        assert budget_stop(budget) is None
        clock.advance(2.0)
        assert budget_stop(budget) == STOP_DEADLINE
