"""Fixtures for the runtime-layer tests (budgets, checkpoints, faults)."""

from __future__ import annotations

import pytest

from repro.core.problem import PartitioningProblem
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.solvers.burkard import bootstrap_initial_solution
from repro.solvers.greedy import greedy_feasible_assignment
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology


@pytest.fixture(scope="module")
def timed_problem() -> PartitioningProblem:
    """A 32-component timing-constrained problem, small enough to solve fast."""
    spec = ClusteredCircuitSpec(
        "runtime", num_components=32, num_wires=120, num_clusters=4
    )
    circuit = generate_clustered_circuit(spec, seed=11)
    topo = grid_topology(2, 2, capacity=circuit.total_size() / 4 * 1.3)
    base = PartitioningProblem(circuit, topo)
    ref = greedy_feasible_assignment(base, seed=1)
    timing = synthesize_feasible_constraints(
        circuit, topo.delay_matrix, ref.part, count=40, min_budget=1.0, seed=3
    )
    return PartitioningProblem(circuit, topo, timing=timing)


@pytest.fixture(scope="module")
def feasible_start(timed_problem):
    """A fully C1+C2-feasible start for ``timed_problem``."""
    return bootstrap_initial_solution(timed_problem, seed=5)
