"""Tests for repro.engine.context (SolverContext)."""

import numpy as np

from repro.core.objective import ObjectiveEvaluator
from repro.engine.context import SolverContext
from repro.netlist.circuit import Circuit
from repro.core.problem import PartitioningProblem
from repro.obs.telemetry import Telemetry
from repro.runtime.budget import Budget
from repro.topology.grid import grid_topology


def tiny_problem():
    circuit = Circuit("ctx")
    for j in range(4):
        circuit.add_component(f"u{j}", size=1.0)
    circuit.add_wire(0, 1, 2.0)
    circuit.add_wire(2, 3, 1.0)
    topo = grid_topology(1, 2, capacity=4.0)
    return PartitioningProblem(circuit, topo)


class TestCreate:
    def test_defaults_resolve(self):
        problem = tiny_problem()
        ctx = SolverContext.create(problem)
        assert ctx.problem is problem
        assert isinstance(ctx.evaluator, ObjectiveEvaluator)
        assert isinstance(ctx.rng, np.random.Generator)
        assert ctx.telemetry is not None  # resolved, never None
        assert ctx.budget is None
        assert ctx.checkpointer is None
        assert ctx.raw_telemetry is None

    def test_existing_generator_passes_through(self):
        rng = np.random.default_rng(7)
        expected = np.random.default_rng(7).integers(0, 1 << 30, size=5)
        ctx = SolverContext.create(tiny_problem(), seed=rng)
        assert ctx.rng is rng
        assert np.array_equal(ctx.rng.integers(0, 1 << 30, size=5), expected)

    def test_seed_is_deterministic(self):
        a = SolverContext.create(tiny_problem(), seed=13)
        b = SolverContext.create(tiny_problem(), seed=13)
        assert a.rng.integers(0, 1000) == b.rng.integers(0, 1000)

    def test_explicit_services_kept(self):
        problem = tiny_problem()
        evaluator = ObjectiveEvaluator(problem)
        tel = Telemetry.enabled_default()
        budget = Budget(wall_seconds=10.0)
        ctx = SolverContext.create(
            problem, evaluator=evaluator, telemetry=tel, budget=budget,
            checkpointer="sentinel",
        )
        assert ctx.evaluator is evaluator
        assert ctx.telemetry is tel
        assert ctx.raw_telemetry is tel
        assert ctx.budget is budget
        assert ctx.checkpointer == "sentinel"


class TestBudgetReason:
    def test_none_without_budget(self):
        assert SolverContext.create(tiny_problem()).budget_reason() is None

    def test_reports_cancellation(self):
        budget = Budget(wall_seconds=100.0)
        ctx = SolverContext.create(tiny_problem(), budget=budget)
        assert ctx.budget_reason() is None
        budget.cancel()
        assert ctx.budget_reason() == "cancelled"
