"""The move-evaluation kernel switch (REPRO_KERNEL batched|scalar)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.problem import PartitioningProblem
from repro.engine.delta import (
    KERNEL_ENV,
    KERNEL_MODES,
    DeltaCache,
    resolve_kernel,
)
from repro.netlist.circuit import Circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


def small_problem(with_timing=True):
    circuit = Circuit("kernel-test")
    for j in range(6):
        circuit.add_component(f"u{j}", size=1.0)
    for j1, j2, w in [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0), (3, 4, 1.0), (4, 5, 2.0), (0, 5, 1.0)]:
        circuit.add_wire(j1, j2, w)
    topo = grid_topology(1, 3, capacity=6.0)
    timing = None
    if with_timing:
        timing = TimingConstraints(6)
        timing.add(0, 3, 1.5)
        timing.add(2, 5, 1.0)
    return PartitioningProblem(circuit, topo, timing=timing)


def initial(problem):
    part = np.arange(problem.num_components) % problem.num_partitions
    return Assignment(part, problem.num_partitions)


class TestResolveKernel:
    def test_explicit_values(self):
        assert resolve_kernel("batched") == "batched"
        assert resolve_kernel("scalar") == "scalar"

    def test_normalises_case_and_whitespace(self):
        assert resolve_kernel("  Batched ") == "batched"
        assert resolve_kernel("SCALAR") == "scalar"

    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == "batched"

    def test_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "scalar")
        assert resolve_kernel() == "scalar"

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "")
        assert resolve_kernel() == "batched"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "scalar")
        assert resolve_kernel("batched") == "batched"

    def test_invalid_value_names_the_env_var(self):
        with pytest.raises(ValueError, match=KERNEL_ENV):
            resolve_kernel("vectorised")

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "gpu")
        with pytest.raises(ValueError, match="gpu"):
            resolve_kernel()


class TestDeltaCacheKernel:
    def test_cache_records_resolved_mode(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        problem = small_problem()
        assert DeltaCache(problem, initial(problem)).kernel == "batched"
        assert (
            DeltaCache(problem, initial(problem), kernel="scalar").kernel
            == "scalar"
        )

    def test_cache_reads_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "scalar")
        problem = small_problem()
        assert DeltaCache(problem, initial(problem)).kernel == "scalar"

    def test_scan_dispatch_matches_across_kernels(self):
        problem = small_problem()
        caches = {
            k: DeltaCache(problem, initial(problem), kernel=k)
            for k in KERNEL_MODES
        }
        scans = {k: c.scan_move_deltas() for k, c in caches.items()}
        assert np.allclose(scans["batched"], scans["scalar"], atol=1e-8)
        assert np.allclose(scans["batched"], caches["batched"].delta, atol=1e-8)

    def test_replay_keeps_state_and_stats_identical(self):
        problem = small_problem()
        caches = {
            k: DeltaCache(problem, initial(problem), kernel=k)
            for k in KERNEL_MODES
        }
        rng = np.random.default_rng(7)
        for _ in range(12):
            j = int(rng.integers(0, problem.num_components))
            i = int(rng.integers(0, problem.num_partitions))
            deltas = {k: c.apply_move(j, i) for k, c in caches.items()}
            assert abs(deltas["batched"] - deltas["scalar"]) < 1e-8
        b, s = caches["batched"], caches["scalar"]
        assert np.allclose(b.delta, s.delta, atol=1e-8)
        assert np.array_equal(b.timing_block, s.timing_block)
        assert np.array_equal(b.part, s.part)
        assert np.allclose(b.loads, s.loads)
        # Counter accounting is mode-independent: the bench gate relies
        # on delta.* counters not changing with the kernel switch.
        assert b.stats.as_dict() == s.stats.as_dict()
        b.audit()
        s.audit()

    def test_best_move_identical_across_kernels(self):
        problem = small_problem()
        caches = {
            k: DeltaCache(problem, initial(problem), kernel=k)
            for k in KERNEL_MODES
        }
        locked = np.zeros(problem.num_components, dtype=bool)
        for _ in range(3):
            moves = {k: c.best_move(locked) for k, c in caches.items()}
            assert (moves["batched"] is None) == (moves["scalar"] is None)
            if moves["batched"] is None:
                break
            jb, ib, db = moves["batched"]
            js, is_, ds = moves["scalar"]
            assert (jb, ib) == (js, is_)
            assert abs(db - ds) < 1e-8
            for cache in caches.values():
                cache.apply_move(jb, ib)
            locked[jb] = True
