"""Tests for repro.engine.outcome (the unified SolveOutcome type)."""

import pytest

from repro.baselines.result import InterchangeResult
from repro.core.assignment import Assignment
from repro.engine.outcome import SolveOutcome
from repro.solvers.burkard import BurkardResult


def base(**kw):
    defaults = dict(
        assignment=Assignment([0, 1], 2), cost=4.0, feasible=True,
        elapsed_seconds=0.1,
    )
    defaults.update(kw)
    return SolveOutcome(**defaults)


class TestSolveOutcome:
    def test_solution_defaults_to_assignment(self):
        outcome = base()
        assert outcome.solution is outcome.assignment

    def test_completed_for_natural_stops(self):
        assert base().completed
        assert base(stop_reason="stalled").completed
        assert not base(stop_reason="deadline").completed
        assert not base(stop_reason="cancelled").completed


class TestSubclassConvergence:
    def test_interchange_result_is_solve_outcome(self):
        result = InterchangeResult(
            assignment=Assignment([0, 1], 2),
            cost=10.0,
            feasible=True,
            elapsed_seconds=0.5,
            initial_cost=20.0,
            passes=2,
            moves_applied=3,
        )
        assert isinstance(result, SolveOutcome)
        assert result.solution is result.assignment
        assert result.completed
        assert result.improvement_percent == pytest.approx(50.0)

    def test_burkard_result_is_solve_outcome(self):
        feas = Assignment([1, 0], 2)
        result = BurkardResult(
            assignment=Assignment([0, 1], 2),
            cost=5.0,
            feasible=True,
            elapsed_seconds=0.2,
            penalized_cost=5.0,
            best_feasible_assignment=feas,
            best_feasible_cost=5.5,
        )
        assert isinstance(result, SolveOutcome)
        # QBP reports the best *fully feasible* iterate, not the
        # penalized-cost incumbent.
        assert result.solution is feas

    def test_burkard_solution_none_without_feasible_iterate(self):
        result = BurkardResult(
            assignment=Assignment([0, 1], 2),
            cost=5.0,
            feasible=False,
            elapsed_seconds=0.2,
        )
        assert result.solution is None

    def test_uniform_downstream_handling(self):
        """The pattern harness/CLI use: .solution with initial fallback."""
        initial = Assignment([0, 0], 2)
        for result in (
            BurkardResult(
                assignment=Assignment([0, 1], 2), cost=1.0, feasible=False,
                elapsed_seconds=0.0,
            ),
            InterchangeResult(
                assignment=Assignment([1, 1], 2), cost=2.0, feasible=True,
                elapsed_seconds=0.0,
            ),
        ):
            chosen = result.solution if result.solution is not None else initial
            assert isinstance(chosen, Assignment)
