"""Tests for repro.engine.delta (DeltaCache kernel modes and back-compat)."""

import numpy as np
import pytest

from repro.baselines.engine import GainEngine
from repro.core.assignment import Assignment
from repro.core.problem import PartitioningProblem
from repro.engine.delta import DeltaCache, ETA_MODES
from repro.netlist.circuit import Circuit
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


def small_problem(with_timing=False):
    circuit = Circuit("delta")
    for j in range(6):
        circuit.add_component(f"u{j}", size=1.0)
    circuit.add_wire(0, 1, 3.0)
    circuit.add_wire(1, 2, 2.0)
    circuit.add_wire(3, 4, 1.0)
    circuit.add_wire(4, 5, 4.0)
    timing = None
    if with_timing:
        timing = TimingConstraints(6)
        timing.add(0, 1, 1.0)
        timing.add(4, 5, 0.0)
    topo = grid_topology(1, 3, capacity=6.0)
    return PartitioningProblem(circuit, topo, timing=timing)


class TestStatelessMode:
    def test_no_assignment_exposes_row_products_only(self):
        cache = DeltaCache(small_problem())
        assert cache.part is None
        assert cache.delta is None
        part = np.array([0, 0, 1, 1, 2, 2])
        rows_in, rows_out = cache.marginal_rows(part)
        assert rows_in.shape == (6, 3)
        assert rows_out.shape == (6, 3)

    def test_reset_attaches_state(self):
        cache = DeltaCache(small_problem())
        cache.reset(Assignment([0, 0, 1, 1, 2, 2], 3))
        assert cache.delta is not None
        cache.audit()

    def test_eta_modes_all_evaluate(self):
        cache = DeltaCache(small_problem(with_timing=True))
        part = np.array([0, 1, 2, 0, 1, 2])
        shapes = set()
        for mode in ETA_MODES:
            eta = cache.eta(part, mode=mode, penalty=50.0)
            shapes.add(eta.shape)
        assert shapes == {(6, 3)}

    def test_timing_penalty_enters_eta(self):
        """A violated constraint's candidate entry carries the penalty."""
        problem = small_problem(with_timing=True)
        cache = DeltaCache(problem)
        part = np.zeros(6, dtype=int)
        lo = cache.eta(part, mode="symmetric", penalty=10.0)
        hi = cache.eta(part, mode="symmetric", penalty=1000.0)
        assert (hi - lo).max() > 0  # penalty scale visibly enters


class TestStatefulState:
    def test_shares_evaluator_arrays(self):
        problem = small_problem(with_timing=True)
        cache = DeltaCache(problem, Assignment([0, 0, 1, 1, 2, 2], 3))
        assert cache.t_src is cache.evaluator.t_src
        assert cache._out_adj is cache.evaluator._out_adj

    def test_loads_follow_capacity_tracker(self):
        cache = DeltaCache(small_problem(), Assignment([0, 0, 1, 1, 2, 2], 3))
        assert cache.loads.tolist() == [2.0, 2.0, 2.0]
        cache.apply_move(0, 2)
        assert cache.loads.tolist() == [1.0, 2.0, 3.0]
        cache.audit()

    def test_best_move_is_deterministic(self):
        cache = DeltaCache(small_problem(), Assignment([0, 1, 2, 0, 1, 2], 3))
        first = cache.best_move()
        second = cache.best_move()
        assert first == second


class TestGainEngineAlias:
    def test_is_delta_cache_subclass(self):
        assert issubclass(GainEngine, DeltaCache)

    def test_eager_constructor_contract(self):
        engine = GainEngine(small_problem(), Assignment([0, 0, 1, 1, 2, 2], 3))
        assert engine.delta is not None
        assert engine.timing_block is not None
        engine.audit()

    def test_matches_delta_cache_bitwise(self):
        problem = small_problem(with_timing=True)
        start = Assignment([0, 0, 1, 1, 2, 2], 3)
        a = GainEngine(problem, start)
        b = DeltaCache(problem, start)
        assert np.array_equal(a.delta, b.delta)
        assert np.array_equal(a.timing_block, b.timing_block)
        assert np.array_equal(a.loads, b.loads)
        assert a.apply_move(2, 0) == b.apply_move(2, 0)
        assert np.array_equal(a.delta, b.delta)


class TestValidation:
    def test_bad_assignment_shape_rejected(self):
        with pytest.raises(ValueError):
            DeltaCache(small_problem(), Assignment([0, 1], 3))
