"""Hot-path counters on the DeltaCache kernel (DeltaStats)."""

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import PartitioningProblem
from repro.engine import DeltaStats
from repro.engine.delta import DeltaCache
from repro.netlist.circuit import Circuit
from repro.obs.telemetry import DISABLED, Telemetry
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


def small_problem(with_timing=False):
    circuit = Circuit("stats")
    for j in range(6):
        circuit.add_component(f"u{j}", size=1.0)
    circuit.add_wire(0, 1, 3.0)
    circuit.add_wire(1, 2, 2.0)
    circuit.add_wire(3, 4, 1.0)
    circuit.add_wire(4, 5, 4.0)
    timing = None
    if with_timing:
        timing = TimingConstraints(6)
        timing.add(0, 1, 1.0)
    topo = grid_topology(1, 3, capacity=6.0)
    return PartitioningProblem(circuit, topo, timing=timing)


def fresh_cache(with_timing=False):
    cache = DeltaCache(small_problem(with_timing), Assignment([0, 0, 1, 1, 2, 2], 3))
    return cache


class TestCounting:
    def test_init_counts_one_full_rebuild(self):
        cache = fresh_cache()
        assert cache.stats.full_rebuilds == 1
        cache.reset(Assignment([0, 1, 2, 0, 1, 2], 3))
        assert cache.stats.full_rebuilds == 2

    def test_moves_and_row_refreshes(self):
        cache = fresh_cache()
        before = cache.stats.row_refreshes
        cache.apply_move(0, 1)
        assert cache.stats.moves == 1
        assert cache.stats.row_refreshes > before

    def test_swaps_count_their_moves_too(self):
        cache = fresh_cache()
        cache.apply_swap(0, 2)
        assert cache.stats.swaps == 1
        assert cache.stats.moves == 2  # a swap is two half-moves

    def test_eta_evals(self):
        cache = DeltaCache(small_problem(with_timing=True))
        part = np.array([0, 1, 2, 0, 1, 2])
        cache.eta(part, mode="exact", penalty=50.0)
        cache.eta(part, mode="exact", penalty=50.0)
        assert cache.stats.eta_evals == 2

    def test_timing_row_refreshes_only_with_timing(self):
        plain = fresh_cache(with_timing=False)
        plain.apply_move(0, 1)
        assert plain.stats.timing_row_refreshes == 0
        timed = fresh_cache(with_timing=True)
        timed.apply_move(0, 1)
        assert timed.stats.timing_row_refreshes > 0

    def test_as_dict_lists_every_counter(self):
        stats = DeltaStats()
        assert set(stats.as_dict()) == {
            "eta_evals",
            "moves",
            "swaps",
            "row_refreshes",
            "timing_row_refreshes",
            "full_rebuilds",
        }


class TestPublish:
    def test_publishes_deltas_to_counters(self):
        cache = fresh_cache()
        cache.apply_move(0, 1)
        tel = Telemetry.enabled_default()
        cache.stats.publish(tel)
        snapshot = tel.metrics_snapshot()
        assert snapshot["counters"]["delta.moves"] == 1.0
        assert snapshot["counters"]["delta.full_rebuilds"] == 1.0

    def test_repeated_publish_does_not_double_count(self):
        cache = fresh_cache()
        cache.apply_move(0, 1)
        tel = Telemetry.enabled_default()
        cache.stats.publish(tel)
        cache.stats.publish(tel)
        assert tel.metrics_snapshot()["counters"]["delta.moves"] == 1.0
        cache.apply_move(1, 2)
        cache.stats.publish(tel)
        assert tel.metrics_snapshot()["counters"]["delta.moves"] == 2.0

    def test_disabled_and_none_are_noops(self):
        cache = fresh_cache()
        cache.apply_move(0, 1)
        cache.stats.publish(None)
        cache.stats.publish(DISABLED)
        tel = Telemetry.enabled_default()
        cache.stats.publish(tel)  # nothing was consumed by the no-ops
        assert tel.metrics_snapshot()["counters"]["delta.moves"] == 1.0

    def test_zero_valued_counters_not_emitted(self):
        tel = Telemetry.enabled_default()
        DeltaStats().publish(tel)
        assert tel.metrics_snapshot()["counters"] == {}
