"""Tests for repro.engine.fanout (shared fold helpers)."""

from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.fanout import BestFold, fold_outcomes


@dataclass
class FakeOutcome:
    index: int
    value: Any = None
    failure: Optional[str] = None


class TestFoldOutcomes:
    def test_routes_in_given_order(self):
        seen = []
        fold_outcomes(
            [FakeOutcome(0, "a"), FakeOutcome(1, "b"), FakeOutcome(2, "c")],
            on_value=lambda i, v: seen.append((i, v)),
        )
        assert seen == [(0, "a"), (1, "b"), (2, "c")]

    def test_failures_routed_separately(self):
        values, failures = [], []
        fold_outcomes(
            [FakeOutcome(0, "a"), FakeOutcome(1, failure="boom"), FakeOutcome(2, "c")],
            on_value=lambda i, v: values.append(i),
            on_failure=lambda i, f: failures.append((i, f)),
        )
        assert values == [0, 2]
        assert failures == [(1, "boom")]

    def test_failures_dropped_without_handler(self):
        values = []
        fold_outcomes(
            [FakeOutcome(0, failure="boom"), FakeOutcome(1, "b")],
            on_value=lambda i, v: values.append((i, v)),
        )
        assert values == [(1, "b")]


class TestBestFold:
    def test_keeps_minimum(self):
        fold = BestFold(key=lambda v: v)
        assert fold.offer(0, 5.0)
        assert fold.offer(1, 3.0)
        assert not fold.offer(2, 4.0)
        assert fold.result() == (3.0, 1)

    def test_ties_keep_lowest_index(self):
        """The multistart determinism contract: strict <, first wins."""
        fold = BestFold(key=lambda v: v[0])
        fold.offer(0, (1.0, "first"))
        assert not fold.offer(1, (1.0, "second"))
        best, index = fold.result()
        assert best == (1.0, "first")
        assert index == 0

    def test_tuple_keys_compare_lexicographically(self):
        """Same rule solve_qbp_multistart uses: (feasible, penalized)."""
        fold = BestFold(key=lambda r: (r["feas"], r["pen"]))
        fold.offer(0, {"feas": float("inf"), "pen": 10.0})
        assert fold.offer(1, {"feas": 5.0, "pen": 99.0})  # feasible beats not
        assert not fold.offer(2, {"feas": 5.0, "pen": 50.0} | {"pen": 99.0})
        assert fold.offer(3, {"feas": 5.0, "pen": 98.0})  # pen breaks the tie
        assert fold.best_index == 3

    def test_empty_result(self):
        assert BestFold(key=lambda v: v).result() == (None, None)
