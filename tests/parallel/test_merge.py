"""Telemetry merge: snapshots fold, merged traces stay schema-valid."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.obs.events import IterationEvent, RestartEvent, validate_trace_line
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.parallel.merge import (
    capture_worker_dump,
    merge_metric_snapshots,
    merge_snapshot_into,
    merge_worker_dump,
    worker_span_id,
)
from repro.parallel.pool import WorkerPool, supports_process_pool

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"

# scripts/ is not a package: load check_trace by path for the
# merged-trace gate tests below.
import importlib.util

_spec = importlib.util.spec_from_file_location(
    "scripts_check_trace", SCRIPTS / "check_trace.py"
)
_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_module)
sys.modules["scripts_check_trace"] = _module


def make_worker_bundle(worker: int) -> Telemetry:
    tel = Telemetry.enabled_default()
    with tel.span("qbp.solve", worker_input=worker):
        with tel.span("qbp.iteration"):
            tel.counter("solver.iterations").inc()
            tel.histogram("move.gain").observe(float(worker))
            tel.emit(
                IterationEvent(
                    solver="qbp", iteration=0, cost=1.0, best_cost=1.0
                )
            )
    tel.gauge("last.worker").set(float(worker))
    return tel


class TestSnapshotMerge:
    def test_counters_add(self):
        merged = merge_metric_snapshots(
            [make_worker_bundle(w).metrics_snapshot() for w in range(3)]
        )
        assert merged["counters"]["solver.iterations"] == 3.0

    def test_gauges_last_write_wins(self):
        merged = merge_metric_snapshots(
            [make_worker_bundle(w).metrics_snapshot() for w in range(3)]
        )
        assert merged["gauges"]["last.worker"] == 2.0

    def test_histogram_summaries_fold_exactly(self):
        merged = merge_metric_snapshots(
            [make_worker_bundle(w).metrics_snapshot() for w in range(4)]
        )
        summary = merged["histograms"]["move.gain"]
        assert summary["count"] == 4
        assert summary["sum"] == 0.0 + 1.0 + 2.0 + 3.0
        assert summary["min"] == 0.0
        assert summary["max"] == 3.0

    def test_merge_into_disabled_is_noop(self):
        from repro.obs.telemetry import DISABLED

        merge_snapshot_into(DISABLED, make_worker_bundle(0).metrics_snapshot())

    def test_reference_histogram_fold(self):
        # Folding two registries' summaries equals one registry that saw
        # every observation.
        reference = MetricsRegistry()
        for value in (1.0, 5.0, 2.0, 8.0):
            reference.histogram("h").observe(value)
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        a.histogram("h").observe(5.0)
        b.histogram("h").observe(2.0)
        b.histogram("h").observe(8.0)
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
        assert merged["histograms"]["h"] == reference.snapshot()["histograms"]["h"]


class TestDumpMerge:
    def test_span_ids_unique_and_worker_prefixed(self):
        parent = Telemetry.enabled_default()
        for worker in range(3):
            dump = capture_worker_dump(make_worker_bundle(worker), worker)
            merge_worker_dump(parent, dump)
        ids = [s.span_id for s in parent.tracer.spans]
        assert len(set(ids)) == len(ids)
        assert worker_span_id(0, 1) in ids
        assert worker_span_id(2, 1) in ids

    def test_worker_roots_reparented_under_open_span(self):
        parent = Telemetry.enabled_default()
        dump = capture_worker_dump(make_worker_bundle(0), 0)
        with parent.span("qbp.multistart"):
            merge_worker_dump(parent, dump)
        by_name = {s.name: s for s in parent.tracer.spans}
        multistart = by_name["qbp.multistart"]
        assert by_name["qbp.solve"].parent_id == multistart.span_id
        assert by_name["qbp.iteration"].parent_id == worker_span_id(0, 1)

    def test_events_are_worker_stamped(self):
        parent = Telemetry.enabled_default()
        merge_worker_dump(parent, capture_worker_dump(make_worker_bundle(5), 5))
        events = parent.events()
        assert len(events) == 1
        assert events[0].kind == "iteration"
        assert events[0].worker == 5

    def test_merged_trace_lines_validate(self):
        parent = Telemetry.enabled_default()
        with parent.span("qbp.multistart"):
            for worker in range(2):
                dump = capture_worker_dump(make_worker_bundle(worker), worker)
                merge_worker_dump(parent, dump)
        parent.emit(
            RestartEvent(solver="qbp", index=0, restarts=2, best_cost=1.0)
        )
        for line in parent.tracer.to_jsonl_lines():
            validate_trace_line(line)

    def test_merged_metrics_fold_in(self):
        parent = Telemetry.enabled_default()
        for worker in range(2):
            merge_worker_dump(
                parent, capture_worker_dump(make_worker_bundle(worker), worker)
            )
        assert parent.metrics_snapshot()["counters"]["solver.iterations"] == 2.0


def emit_spans_task(payload, ctx):
    with ctx.telemetry.span("worker.unit", index=ctx.worker_id):
        ctx.telemetry.emit(
            IterationEvent(solver="qbp", iteration=0, cost=1.0, best_cost=1.0)
        )
    return payload


@pytest.mark.skipif(not supports_process_pool(), reason="platform lacks fork")
class TestMergedTraceThroughPool:
    def test_check_trace_accepts_merged_trace(self, tmp_path):
        from scripts_check_trace import check_trace

        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="merge.test", telemetry=tel)
        with tel.span("pool.parent"):
            pool.map(emit_spans_task, [0, 1, 2])
        trace = tmp_path / "merged.jsonl"
        lines = tel.tracer.to_jsonl_lines()
        for event in tel.events():
            from repro.obs.events import event_to_dict

            lines.append(json.dumps(event_to_dict(event), sort_keys=True))
        trace.write_text("".join(line + "\n" for line in lines))
        problems = check_trace(
            trace, min_spans=4, min_events=3, require_spans=["pool.parent"]
        )
        assert problems == []

    def test_span_ids_unique_across_workers(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="merge.test", telemetry=tel)
        with tel.span("pool.parent"):
            pool.map(emit_spans_task, [0, 1, 2])
        ids = [s.span_id for s in tel.tracer.spans]
        assert len(set(ids)) == len(ids)
        assert {f"w{k}:1" for k in range(3)} <= set(ids)

    def test_events_tagged_by_worker(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="merge.test", telemetry=tel)
        pool.map(emit_spans_task, [0, 1, 2])
        workers = sorted(e.worker for e in tel.events() if e.kind != "progress")
        assert workers == [0, 1, 2]
