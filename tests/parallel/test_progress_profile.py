"""Pool progress events and worker-side profiling through the merge path."""

from __future__ import annotations

import time

import pytest

from repro.obs.prof import Profiler, clear_profile_env, set_profile_env
from repro.obs.telemetry import DISABLED, Telemetry
from repro.parallel.merge import capture_worker_dump, merge_worker_dump
from repro.parallel.pool import WorkerPool, supports_process_pool


# Task functions must be module-level so they cross the fork boundary.
def instant(payload, ctx):
    return payload


def burn_cpu(payload, ctx):
    deadline = time.perf_counter() + 0.2
    total = 0.0
    while time.perf_counter() < deadline:
        total += sum(float(i) for i in range(200))
    return total


def _progress_events(tel):
    return [e for e in tel.events() if e.kind == "progress"]


class TestProgressEvents:
    def test_serial_map_emits_final_progress(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=1, name="serial.batch", telemetry=tel)
        pool.map(instant, [1, 2, 3])
        events = _progress_events(tel)
        assert events
        final = events[-1]
        assert final.pool == "serial.batch"
        assert (final.done, final.total, final.failed) == (3, 3, 0)
        assert final.elapsed_seconds >= 0.0

    def test_failed_tasks_counted(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=1, name="p", telemetry=tel)

        def boom(payload, ctx):
            raise RuntimeError("nope")

        pool.map(boom, [1, 2])
        final = _progress_events(tel)[-1]
        assert final.done == 2
        assert final.failed == 2

    def test_disabled_telemetry_emits_nothing(self):
        pool = WorkerPool(workers=1, name="p", telemetry=DISABLED)
        outcomes = pool.map(instant, [1, 2])
        assert [o.value for o in outcomes] == [1, 2]

    @pytest.mark.skipif(
        not supports_process_pool(), reason="platform lacks fork"
    )
    def test_process_map_emits_final_progress(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="proc.batch", telemetry=tel)
        pool.map(instant, [1, 2, 3])
        final = _progress_events(tel)[-1]
        assert (final.done, final.total) == (3, 3)

    def test_eta_math(self):
        from repro.parallel.pool import _BatchProgress, _TaskState, TaskOutcome

        tel = Telemetry.enabled_default()
        states = [_TaskState(i, i) for i in range(4)]
        progress = _BatchProgress("p", tel, states)
        states[0].outcome = TaskOutcome(0, value=0)
        states[1].outcome = TaskOutcome(1, value=1)
        progress.t0 -= 2.0  # pretend 2 s elapsed for 2 of 4 tasks
        progress.update(force=True)
        event = _progress_events(tel)[-1]
        assert event.eta_seconds == pytest.approx(2.0, rel=0.2)


class TestWorkerProfileMerge:
    def teardown_method(self):
        clear_profile_env()

    def test_dump_carries_profile_when_armed(self):
        tel = Telemetry.enabled_default()
        tel.profiler = Profiler(interval=0.001)
        tel.profiler.sampler.counts[("m:f",)] = 5
        tel.profiler.sampler.total_samples = 5
        dump = capture_worker_dump(tel, worker=0)
        assert dump["profile"]["samples"] == 5

    def test_dump_profile_none_when_unarmed(self):
        dump = capture_worker_dump(Telemetry.enabled_default(), worker=0)
        assert dump["profile"] is None

    def test_merge_folds_into_parent_profiler(self):
        worker_tel = Telemetry.enabled_default()
        worker_tel.profiler = Profiler(interval=0.001)
        worker_tel.profiler.sampler.counts[("m:f", "m:g")] = 3
        worker_tel.profiler.sampler.total_samples = 3
        dump = capture_worker_dump(worker_tel, worker=1)

        parent = Telemetry.enabled_default()
        parent.profiler = Profiler(interval=0.001)
        merge_worker_dump(parent, dump)
        assert parent.profiler.total_samples == 3

    def test_merge_without_parent_profiler_is_noop(self):
        worker_tel = Telemetry.enabled_default()
        worker_tel.profiler = Profiler(interval=0.001)
        worker_tel.profiler.sampler.total_samples = 1
        dump = capture_worker_dump(worker_tel, worker=1)
        merge_worker_dump(Telemetry.enabled_default(), dump)  # must not raise

    @pytest.mark.skipif(
        not supports_process_pool(), reason="platform lacks fork"
    )
    def test_forked_workers_sample_and_merge_back(self):
        set_profile_env(0.002, memory=False)
        tel = Telemetry.enabled_default()
        tel.profiler = Profiler(interval=0.002)
        pool = WorkerPool(workers=2, name="prof.batch", telemetry=tel)
        pool.map(burn_cpu, [0, 1])
        assert tel.profiler.total_samples > 0
        leaves = {stack[-1] for stack in tel.profiler.sampler.counts}
        assert any("burn_cpu" in leaf for leaf in leaves)
