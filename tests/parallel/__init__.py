"""Tests for the parallel execution subsystem (repro.parallel)."""
