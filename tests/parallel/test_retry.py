"""RetryPolicy: backoff determinism, env resolution, digest stability."""

from __future__ import annotations

import pytest

from repro.parallel.retry import (
    DEFAULT_RETRIES_ENV,
    RETRYABLE_KINDS,
    IntegrityError,
    RetryPolicy,
    payload_digest,
)


class TestPayloadDigest:
    def test_stable_across_calls(self):
        payload = ("cktb", 3, (1, 2, 3))
        assert payload_digest(payload) == payload_digest(payload)

    def test_distinguishes_payloads(self):
        assert payload_digest(("a", 1)) != payload_digest(("a", 2))

    def test_short_hex(self):
        digest = payload_digest({"x": 1})
        assert len(digest) == 16
        int(digest, 16)  # valid hex

    def test_unpicklable_falls_back_to_repr(self):
        digest = payload_digest(lambda: None)  # noqa: E731
        assert len(digest) == 16


class TestRetryPolicy:
    def test_should_retry_respects_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("error", 0)
        assert policy.should_retry("crash", 1)
        assert not policy.should_retry("error", 2)  # third attempt is last

    def test_should_retry_respects_kinds(self):
        policy = RetryPolicy(max_attempts=5)
        for kind in RETRYABLE_KINDS:
            assert policy.should_retry(kind, 0)
        assert not policy.should_retry("budget", 0)
        assert not policy.should_retry("skipped", 0)

    def test_single_attempt_never_retries(self):
        assert not RetryPolicy(max_attempts=1).should_retry("error", 0)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.0)
        digest = payload_digest("x")
        assert policy.delay_seconds(digest, 0) == pytest.approx(0.1)
        assert policy.delay_seconds(digest, 1) == pytest.approx(0.2)
        assert policy.delay_seconds(digest, 2) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.0, jitter=0.0)
        assert policy.delay_seconds(payload_digest("x"), 10) == pytest.approx(2.0)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        digest = payload_digest(("ckta", 0))
        assert policy.delay_seconds(digest, 1) == policy.delay_seconds(digest, 1)

    def test_jitter_varies_per_payload_and_attempt(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        d1, d2 = payload_digest("a"), payload_digest("b")
        assert policy.delay_seconds(d1, 0) != policy.delay_seconds(d2, 0)
        # Same base backoff (capped), different jitter draw per attempt.
        assert policy.delay_seconds(d1, 1) != policy.delay_seconds(d1, 2)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        for token in range(20):
            delay = policy.delay_seconds(payload_digest(token), 0)
            assert 0.5 <= delay <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestEnvResolution:
    def test_unset_means_no_retries(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_RETRIES_ENV, raising=False)
        assert RetryPolicy.from_env() is None

    def test_env_sets_attempts(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_RETRIES_ENV, "4")
        policy = RetryPolicy.from_env()
        assert policy is not None and policy.max_attempts == 4

    def test_below_two_means_no_retries(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_RETRIES_ENV, "1")
        assert RetryPolicy.from_env() is None

    def test_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_RETRIES_ENV, "lots")
        assert RetryPolicy.from_env() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_RETRIES_ENV, "9")
        explicit = RetryPolicy(max_attempts=2)
        assert RetryPolicy.resolve(explicit) is explicit
        resolved = RetryPolicy.resolve(None)
        assert resolved is not None and resolved.max_attempts == 9


class TestIntegrityError:
    def test_is_a_runtime_error(self):
        assert issubclass(IntegrityError, RuntimeError)
