"""Parallel run_table: row equivalence, out-of-order checkpoint resume."""

from __future__ import annotations

import pytest

from repro.eval.harness import SolverTimings, TableCheckpoint, run_table
from repro.obs.telemetry import Telemetry, use_telemetry
from repro.parallel.pool import supports_process_pool

needs_fork = pytest.mark.skipif(
    not supports_process_pool(), reason="platform lacks fork"
)

# Two small circuits keep each solve under a second while still
# exercising a genuine multi-task fan-out.
RUN = dict(scale=0.1, qbp_iterations=8, circuits=["ckta", "cktb"], seed=0)


def deterministic_fields(row):
    return (
        row.name,
        row.with_timing,
        row.start_cost,
        row.qbp_cost,
        row.gfm_cost,
        row.gkl_cost,
        row.all_feasible,
        row.stop_reason,
    )


@needs_fork
class TestRowEquivalence:
    def test_parallel_rows_match_serial(self):
        serial = run_table(2, workers=1, **RUN)
        parallel = run_table(2, workers=2, **RUN)
        assert [deterministic_fields(r) for r in serial] == [
            deterministic_fields(r) for r in parallel
        ]

    def test_rows_come_back_in_canonical_order(self):
        rows = run_table(2, workers=2, **RUN)
        assert [r.name for r in rows] == ["ckta", "cktb"]

    def test_iteration_counters_match(self):
        def totals(workers):
            tel = Telemetry.enabled_default()
            with use_telemetry(tel):
                run_table(2, workers=workers, **RUN)
            return tel.metrics_snapshot()["counters"].get("solver.iterations")

        assert totals(1) == totals(2)


@needs_fork
class TestParallelCheckpoint:
    def test_checkpoint_roundtrip(self, tmp_path):
        first = run_table(2, workers=2, checkpoint_dir=tmp_path, **RUN)
        resumed = run_table(2, workers=2, checkpoint_dir=tmp_path, **RUN)
        assert [deterministic_fields(r) for r in first] == [
            deterministic_fields(r) for r in resumed
        ]

    def test_out_of_order_completion_resumes_correctly(self, tmp_path):
        # Simulate a run that completed only the LAST circuit before
        # dying (parallel workers finish in any order): pre-record
        # cktb's row, then resume.  The resumed sweep must run only
        # ckta and still return rows in canonical order, identical to
        # an uninterrupted run.
        reference = run_table(2, workers=1, **RUN)
        params = {
            "scale": 0.1,
            "qbp_iterations": 8,
            "seed": 0,
            "methods": ["qbp", "gfm", "gkl"],
        }
        checkpoint = TableCheckpoint(tmp_path, 2, params=params)
        checkpoint.record(reference[1])  # cktb only

        resumed = run_table(2, workers=2, checkpoint_dir=tmp_path, **RUN)
        assert [r.name for r in resumed] == ["ckta", "cktb"]
        assert [deterministic_fields(r) for r in resumed] == [
            deterministic_fields(r) for r in reference
        ]

    def test_parallel_records_all_completed_rows(self, tmp_path):
        run_table(2, workers=2, checkpoint_dir=tmp_path, **RUN)
        checkpoint = TableCheckpoint(
            tmp_path,
            2,
            params={
                "scale": 0.1,
                "qbp_iterations": 8,
                "seed": 0,
                "methods": ["qbp", "gfm", "gkl"],
            },
        )
        assert checkpoint.completed("ckta") is not None
        assert checkpoint.completed("cktb") is not None


class TestSolverTimingsMerge:
    def test_merge_sums_components(self):
        merged = SolverTimings.merge(
            [
                SolverTimings(qbp=1.0, gfm=2.0, gkl=3.0),
                SolverTimings(qbp=0.5, gfm=0.25, gkl=0.125),
            ]
        )
        assert merged == SolverTimings(qbp=1.5, gfm=2.25, gkl=3.125)
        assert merged.total == 1.5 + 2.25 + 3.125

    def test_merge_accepts_dict_payloads(self):
        payload = SolverTimings(qbp=1.0, gfm=1.0, gkl=1.0).to_dict()
        merged = SolverTimings.merge([payload, payload])
        assert merged == SolverTimings(qbp=2.0, gfm=2.0, gkl=2.0)

    def test_merge_skips_none_entries(self):
        merged = SolverTimings.merge([None, SolverTimings(qbp=1.0, gfm=0.0, gkl=0.0)])
        assert merged.qbp == 1.0

    def test_merge_empty_is_zero(self):
        assert SolverTimings.merge([]) == SolverTimings()

    def test_merge_roundtrips_through_to_dict(self):
        a = SolverTimings(qbp=1.0, gfm=2.0, gkl=3.0)
        b = SolverTimings(qbp=4.0, gfm=5.0, gkl=6.0)
        merged = SolverTimings.merge([a.to_dict(), b.to_dict()])
        assert SolverTimings.from_dict(merged.to_dict()) == merged

    def test_merge_aggregates_table_rows(self):
        rows = run_table(2, workers=1, **RUN)
        merged = SolverTimings.merge(r.timings for r in rows)
        assert merged.total > 0.0
