"""Seed streams: deterministic, order-insensitive, restart-independent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.seeds import multistart_seeds, seed_stream


def draws(sequences):
    return [float(np.random.default_rng(s).random()) for s in sequences]


class TestSeedStream:
    def test_deterministic_for_same_seed(self):
        assert draws(seed_stream(42, 5)) == draws(seed_stream(42, 5))

    def test_different_seeds_differ(self):
        assert draws(seed_stream(1, 4)) != draws(seed_stream(2, 4))

    def test_streams_are_mutually_independent(self):
        values = draws(seed_stream(0, 8))
        assert len(set(values)) == len(values)

    def test_prefix_property(self):
        # Stream k depends only on (seed, k): asking for more streams
        # never changes the earlier ones.  This is what lets a parallel
        # run with more workers reuse the same per-restart seeds.
        assert draws(seed_stream(7, 3)) == draws(seed_stream(7, 10))[:3]

    def test_count_zero_is_empty(self):
        assert seed_stream(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            seed_stream(0, -1)

    def test_generator_seed_accepted(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        assert draws(seed_stream(rng1, 3)) == draws(seed_stream(rng2, 3))

    def test_none_seed_is_nondeterministic_but_valid(self):
        assert len(seed_stream(None, 3)) == 3


def test_multistart_seeds_is_seed_stream():
    assert draws(multistart_seeds(3, 4)) == draws(seed_stream(3, 4))
