"""WorkerPool behaviour: dispatch, fallbacks, failures, budget leases,
and the self-healing ladder (hang watchdog, retry, quarantine,
integrity gate, worker fault sites)."""

from __future__ import annotations

import os
import time

import pytest

from repro.obs.telemetry import Telemetry
from repro.parallel.pool import (
    DEFAULT_TIMEOUT_ENV,
    DEFAULT_WORKERS_ENV,
    WorkerCrashError,
    WorkerPool,
    resolve_task_timeout,
    resolve_workers,
    supports_process_pool,
)
from repro.parallel.retry import IntegrityError, RetryPolicy
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan, inject_faults


# Task functions must be module-level so they cross the fork boundary.
def square(payload, ctx):
    return payload * payload


def record_context(payload, ctx):
    return {
        "worker_id": ctx.worker_id,
        "pid": os.getpid(),
        "has_budget": ctx.budget is not None,
        "env_workers": os.environ.get(DEFAULT_WORKERS_ENV),
    }


def fail_on_odd(payload, ctx):
    if payload % 2:
        raise RuntimeError(f"odd payload {payload}")
    return payload


def sleep_until_cancelled(payload, ctx):
    if payload == "fast":
        return "done"
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if ctx.budget is not None and ctx.budget.check() is not None:
            return "cancelled"
        time.sleep(0.01)
    return "timed out"


def instant(payload, ctx):
    return payload


def fail_first_attempt(payload, ctx):
    if ctx.attempt == 0:
        raise RuntimeError(f"transient fault on {payload}")
    return payload


def always_fail(payload, ctx):
    raise RuntimeError(f"poison payload {payload}")


def corrupt_first_attempt(payload, ctx):
    # A silently wrong value on the first attempt; correct afterwards.
    return -payload if ctx.attempt == 0 else payload


def wedge(payload, ctx):
    if payload == "wedge":
        # No budget checks: no heartbeats, invisible to cancellation.
        time.sleep(30.0)
    return payload


def reject_negative(value, payload):
    if isinstance(value, int) and value < 0:
        raise IntegrityError(f"negative value {value} for payload {payload}")


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "4")
        assert resolve_workers(None) == 4

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "many")
        assert resolve_workers(None) == 1

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestSerialPath:
    def test_workers_one_never_forks(self):
        pool = WorkerPool(workers=1)
        assert not pool.uses_processes

    def test_results_in_order(self):
        outcomes = WorkerPool(workers=1).map(square, [1, 2, 3, 4])
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        assert [o.index for o in outcomes] == [0, 1, 2, 3]

    def test_serial_uses_parent_process(self):
        outcomes = WorkerPool(workers=1).map(record_context, [None])
        assert outcomes[0].value["pid"] == os.getpid()

    def test_failure_is_isolated(self):
        outcomes = WorkerPool(workers=1).map(fail_on_odd, [0, 1, 2])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].failure.error_type == "RuntimeError"
        assert "odd payload 1" in outcomes[1].failure.message

    def test_strict_raises(self):
        with pytest.raises(WorkerCrashError, match="odd payload"):
            WorkerPool(workers=1).map(fail_on_odd, [0, 1], strict=True)

    def test_call_ordered_fault_plan_forces_serial(self):
        pool = WorkerPool(workers=4)
        plan = FaultPlan()
        plan.fail("solver.step")  # call-ordered: counters are process-local
        with inject_faults(plan):
            assert not pool.uses_processes

    def test_task_scoped_fault_plan_keeps_processes(self):
        pool = WorkerPool(workers=4)
        plan = FaultPlan()
        plan.fail_task("worker.retry", tasks=[1])  # pure in (task, attempt)
        assert plan.fork_safe
        with inject_faults(plan):
            assert pool.uses_processes

    def test_fake_budget_clock_forces_serial(self):
        fake_now = [0.0]
        budget = Budget(wall_seconds=10.0, clock=lambda: fake_now[0])
        pool = WorkerPool(workers=4, budget=budget)
        assert not pool.uses_processes

    def test_first_success_skips_rest(self):
        outcomes = WorkerPool(workers=1).map(instant, ["a", "b"], first_success=True)
        assert outcomes[0].value == "a"
        assert not outcomes[1].ok
        assert outcomes[1].failure.error_type == "Skipped"

    def test_on_result_sees_successes(self):
        seen = []
        WorkerPool(workers=1).map(
            fail_on_odd, [0, 1, 2], on_result=lambda o: seen.append(o.index)
        )
        assert seen == [0, 2]


@pytest.mark.skipif(not supports_process_pool(), reason="platform lacks fork")
class TestProcessPath:
    def test_uses_processes(self):
        assert WorkerPool(workers=2).uses_processes

    def test_results_in_payload_order(self):
        outcomes = WorkerPool(workers=2).map(square, list(range(6)))
        assert [o.value for o in outcomes] == [n * n for n in range(6)]

    def test_runs_in_child_processes(self):
        outcomes = WorkerPool(workers=2).map(record_context, [None, None])
        pids = {o.value["pid"] for o in outcomes}
        assert os.getpid() not in pids

    def test_workers_cannot_nest_pools(self):
        outcomes = WorkerPool(workers=2).map(record_context, [None, None])
        assert all(o.value["env_workers"] == "1" for o in outcomes)

    def test_single_payload_stays_serial(self):
        outcomes = WorkerPool(workers=4).map(record_context, [None])
        assert outcomes[0].value["pid"] == os.getpid()

    def test_worker_failure_is_isolated(self):
        outcomes = WorkerPool(workers=2).map(fail_on_odd, [0, 1, 2, 3])
        assert [o.ok for o in outcomes] == [True, False, True, False]
        failure = outcomes[1].failure
        assert failure.error_type == "RuntimeError"
        assert "odd payload 1" in failure.message
        assert "Traceback" in failure.traceback

    def test_failures_emit_fallback_events(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="test.pool", telemetry=tel)
        pool.map(fail_on_odd, [0, 1, 2, 3])
        fallbacks = [e for e in tel.events() if getattr(e, "kind", "") == "fallback"]
        assert [e.rung for e in fallbacks] == ["worker-1", "worker-3"]
        assert all(e.ladder == "test.pool" and e.status == "error" for e in fallbacks)
        snapshot = tel.metrics_snapshot()
        assert snapshot["counters"]["pool.task_failures"] == 2.0

    def test_budget_expiry_cancels_workers(self):
        budget = Budget(wall_seconds=0.3)
        pool = WorkerPool(workers=2, budget=budget)
        t0 = time.monotonic()
        outcomes = pool.map(sleep_until_cancelled, [None, None])
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0  # cooperative cancel, not the 10s task deadline
        assert all(o.value == "cancelled" for o in outcomes if o.ok)

    def test_first_success_cancels_stragglers(self):
        t0 = time.monotonic()
        outcomes = WorkerPool(workers=2).map(
            sleep_until_cancelled, ["fast", "slow"], first_success=True
        )
        elapsed = time.monotonic() - t0
        # The fast task's success must cancel the slow one well before
        # its 10-second deadline (the cancel event reaches its lease).
        assert elapsed < 5.0
        assert outcomes[0].value == "done"
        assert outcomes[1].value in ("cancelled", None)


class TestResolveTaskTimeout:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_TIMEOUT_ENV, "9")
        assert resolve_task_timeout(3.0) == 3.0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_TIMEOUT_ENV, "4.5")
        assert resolve_task_timeout(None) == 4.5

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_TIMEOUT_ENV, raising=False)
        assert resolve_task_timeout(None) is None

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_TIMEOUT_ENV, "soon")
        assert resolve_task_timeout(None) is None

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            resolve_task_timeout(0.0)


QUICK_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


class TestSerialSelfHealing:
    """Retry / quarantine / integrity on the in-process path."""

    def test_retry_cures_transient_failure(self):
        pool = WorkerPool(workers=1, retry=QUICK_RETRY)
        outcomes = pool.map(fail_first_attempt, [10, 20])
        assert [o.value for o in outcomes] == [10, 20]

    def test_no_retry_by_default(self):
        outcomes = WorkerPool(workers=1).map(fail_first_attempt, [10])
        assert not outcomes[0].ok
        assert outcomes[0].failure.attempts == 1

    def test_quarantine_after_max_attempts(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=1, name="q.pool", retry=QUICK_RETRY, telemetry=tel)
        outcomes = pool.map(always_fail, ["bad"])
        failure = outcomes[0].failure
        assert failure is not None and failure.attempts == 3
        events = {getattr(e, "kind", "") for e in tel.events()}
        assert "retry" in events and "quarantine" in events
        quarantine = [e for e in tel.events() if getattr(e, "kind", "") == "quarantine"]
        assert len(quarantine) == 1
        assert quarantine[0].attempts == 3
        assert len(quarantine[0].payload_digest) == 16
        snapshot = tel.metrics_snapshot()
        assert snapshot["counters"]["pool.task_retries"] == 2.0
        assert snapshot["counters"]["pool.task_quarantined"] == 1.0

    def test_integrity_gate_rejects_and_retries(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=1, name="i.pool", retry=QUICK_RETRY, telemetry=tel)
        outcomes = pool.map(corrupt_first_attempt, [7], verify=reject_negative)
        assert outcomes[0].value == 7
        integrity = [e for e in tel.events() if getattr(e, "kind", "") == "integrity"]
        assert len(integrity) == 1
        assert "negative value -7" in integrity[0].reason
        assert tel.metrics_snapshot()["counters"]["pool.integrity_rejects"] == 1.0

    def test_integrity_failure_without_retry_is_final(self):
        outcomes = WorkerPool(workers=1).map(
            corrupt_first_attempt, [7], verify=reject_negative
        )
        failure = outcomes[0].failure
        assert failure is not None and failure.kind == "integrity"

    def test_serial_crash_site_degrades_to_crash_kind(self):
        plan = FaultPlan().fail_task("worker.crash", tasks=[0])
        with inject_faults(plan):
            outcomes = WorkerPool(workers=1).map(instant, ["a"])
        failure = outcomes[0].failure
        assert failure is not None and failure.kind == "crash"
        assert ("worker.crash", 0, "fail") in plan.injected


@pytest.mark.skipif(not supports_process_pool(), reason="platform lacks fork")
class TestProcessSelfHealing:
    """Hang watchdog, crash isolation, retry, integrity across the fork."""

    def test_retry_cures_transient_failure(self):
        pool = WorkerPool(workers=2, retry=QUICK_RETRY)
        assert pool.uses_processes
        outcomes = pool.map(fail_first_attempt, [10, 20])
        assert [o.value for o in outcomes] == [10, 20]
        assert all(o.ok for o in outcomes)

    def test_hang_watchdog_kills_silent_worker(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="h.pool", task_timeout=1.0, telemetry=tel)
        t0 = time.monotonic()
        outcomes = pool.map(wedge, ["ok", "wedge"])
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0  # killed, not waited out
        assert outcomes[0].value == "ok"
        failure = outcomes[1].failure
        assert failure is not None and failure.kind == "hang"
        assert "heartbeat" in failure.message
        fallbacks = [e for e in tel.events() if getattr(e, "kind", "") == "fallback"]
        assert any(e.status == "timeout" for e in fallbacks)
        assert tel.metrics_snapshot()["counters"]["pool.task_hangs"] == 1.0

    def test_heartbeats_keep_budget_checkers_alive(self):
        # A task that checks its budget is never hang-killed, even when
        # it runs far longer than the timeout between results.
        budget = Budget(wall_seconds=1.0)
        pool = WorkerPool(workers=2, task_timeout=0.5, budget=budget)
        outcomes = pool.map(sleep_until_cancelled, [None, None])
        assert all(o.ok for o in outcomes)
        assert all(o.value == "cancelled" for o in outcomes)

    def test_injected_crash_is_isolated_and_retried(self):
        plan = FaultPlan().fail_task("worker.crash", tasks=[1])
        pool = WorkerPool(workers=2, retry=QUICK_RETRY)
        with inject_faults(plan):
            assert pool.uses_processes
            outcomes = pool.map(square, [2, 3, 4])
        assert [o.value for o in outcomes] == [4, 9, 16]
        # The dead worker could not report; the parent reconstructed it.
        assert ("worker.crash", 1, "fail") in plan.injected

    def test_injected_crash_without_retry_is_crash_kind(self):
        plan = FaultPlan().fail_task("worker.crash", tasks=[1])
        with inject_faults(plan):
            outcomes = WorkerPool(workers=2).map(square, [2, 3])
        failure = outcomes[1].failure
        assert failure is not None and failure.kind == "crash"
        assert "died abruptly" in failure.message

    def test_injected_hang_is_killed_and_retried(self):
        plan = FaultPlan().slow_task("worker.hang", 30.0, tasks=[1])
        pool = WorkerPool(workers=2, task_timeout=1.0, retry=QUICK_RETRY)
        with inject_faults(plan):
            t0 = time.monotonic()
            outcomes = pool.map(square, [2, 3])
            elapsed = time.monotonic() - t0
        assert elapsed < 10.0
        assert [o.value for o in outcomes] == [4, 9]
        assert ("worker.hang", 1, "slow") in plan.injected

    def test_injected_worker_retry_site_round_trips_audit(self):
        plan = FaultPlan().fail_task("worker.retry", tasks=[0])
        pool = WorkerPool(workers=2, retry=QUICK_RETRY)
        with inject_faults(plan):
            outcomes = pool.map(square, [5, 6])
        assert [o.value for o in outcomes] == [25, 36]
        # This entry crossed the fork inside the result message.
        assert ("worker.retry", 0, "fail") in plan.injected

    def test_integrity_gate_rejects_and_retries(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="i.pool", retry=QUICK_RETRY, telemetry=tel)
        outcomes = pool.map(corrupt_first_attempt, [7, 8], verify=reject_negative)
        assert [o.value for o in outcomes] == [7, 8]
        integrity = [e for e in tel.events() if getattr(e, "kind", "") == "integrity"]
        assert len(integrity) == 2

    def test_first_success_with_hung_straggler(self):
        # The winner's cancel cannot reach a wedged worker (it never
        # checks its lease); only the watchdog can - the batch must not
        # outlive the winner by more than the timeout.
        pool = WorkerPool(workers=2, task_timeout=2.0)
        t0 = time.monotonic()
        outcomes = pool.map(wedge, ["fast", "wedge"], first_success=True)
        elapsed = time.monotonic() - t0
        assert elapsed < 15.0
        assert outcomes[0].value == "fast"
        failure = outcomes[1].failure
        assert failure is not None and failure.kind == "hang"

    def test_failure_kinds_and_attempts_in_outcomes(self):
        pool = WorkerPool(workers=2, retry=QUICK_RETRY)
        outcomes = pool.map(always_fail, ["a", "b"])
        for outcome in outcomes:
            assert outcome.failure.kind == "error"
            assert outcome.failure.attempts == 3

    def test_retry_events_are_deterministic(self):
        def stream(tel):
            return [
                (e.task, e.attempt, e.delay_seconds)
                for e in tel.events()
                if getattr(e, "kind", "") == "retry"
            ]

        streams = []
        for _ in range(2):
            tel = Telemetry.enabled_default()
            pool = WorkerPool(workers=2, retry=QUICK_RETRY, telemetry=tel)
            pool.map(always_fail, ["a", "b"])
            streams.append(stream(tel))
        assert streams[0] == streams[1]
        assert len(streams[0]) == 4  # 2 tasks x 2 retries each
