"""WorkerPool behaviour: dispatch, fallbacks, failures, budget leases."""

from __future__ import annotations

import os
import time

import pytest

from repro.obs.telemetry import Telemetry
from repro.parallel.pool import (
    DEFAULT_WORKERS_ENV,
    WorkerCrashError,
    WorkerPool,
    resolve_workers,
    supports_process_pool,
)
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan, inject_faults


# Task functions must be module-level so they cross the fork boundary.
def square(payload, ctx):
    return payload * payload


def record_context(payload, ctx):
    return {
        "worker_id": ctx.worker_id,
        "pid": os.getpid(),
        "has_budget": ctx.budget is not None,
        "env_workers": os.environ.get(DEFAULT_WORKERS_ENV),
    }


def fail_on_odd(payload, ctx):
    if payload % 2:
        raise RuntimeError(f"odd payload {payload}")
    return payload


def sleep_until_cancelled(payload, ctx):
    if payload == "fast":
        return "done"
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if ctx.budget is not None and ctx.budget.check() is not None:
            return "cancelled"
        time.sleep(0.01)
    return "timed out"


def instant(payload, ctx):
    return payload


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "4")
        assert resolve_workers(None) == 4

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "many")
        assert resolve_workers(None) == 1

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestSerialPath:
    def test_workers_one_never_forks(self):
        pool = WorkerPool(workers=1)
        assert not pool.uses_processes

    def test_results_in_order(self):
        outcomes = WorkerPool(workers=1).map(square, [1, 2, 3, 4])
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        assert [o.index for o in outcomes] == [0, 1, 2, 3]

    def test_serial_uses_parent_process(self):
        outcomes = WorkerPool(workers=1).map(record_context, [None])
        assert outcomes[0].value["pid"] == os.getpid()

    def test_failure_is_isolated(self):
        outcomes = WorkerPool(workers=1).map(fail_on_odd, [0, 1, 2])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].failure.error_type == "RuntimeError"
        assert "odd payload 1" in outcomes[1].failure.message

    def test_strict_raises(self):
        with pytest.raises(WorkerCrashError, match="odd payload"):
            WorkerPool(workers=1).map(fail_on_odd, [0, 1], strict=True)

    def test_active_fault_plan_forces_serial(self):
        pool = WorkerPool(workers=4)
        with inject_faults(FaultPlan()):
            assert not pool.uses_processes

    def test_fake_budget_clock_forces_serial(self):
        fake_now = [0.0]
        budget = Budget(wall_seconds=10.0, clock=lambda: fake_now[0])
        pool = WorkerPool(workers=4, budget=budget)
        assert not pool.uses_processes

    def test_first_success_skips_rest(self):
        outcomes = WorkerPool(workers=1).map(instant, ["a", "b"], first_success=True)
        assert outcomes[0].value == "a"
        assert not outcomes[1].ok
        assert outcomes[1].failure.error_type == "Skipped"

    def test_on_result_sees_successes(self):
        seen = []
        WorkerPool(workers=1).map(
            fail_on_odd, [0, 1, 2], on_result=lambda o: seen.append(o.index)
        )
        assert seen == [0, 2]


@pytest.mark.skipif(not supports_process_pool(), reason="platform lacks fork")
class TestProcessPath:
    def test_uses_processes(self):
        assert WorkerPool(workers=2).uses_processes

    def test_results_in_payload_order(self):
        outcomes = WorkerPool(workers=2).map(square, list(range(6)))
        assert [o.value for o in outcomes] == [n * n for n in range(6)]

    def test_runs_in_child_processes(self):
        outcomes = WorkerPool(workers=2).map(record_context, [None, None])
        pids = {o.value["pid"] for o in outcomes}
        assert os.getpid() not in pids

    def test_workers_cannot_nest_pools(self):
        outcomes = WorkerPool(workers=2).map(record_context, [None, None])
        assert all(o.value["env_workers"] == "1" for o in outcomes)

    def test_single_payload_stays_serial(self):
        outcomes = WorkerPool(workers=4).map(record_context, [None])
        assert outcomes[0].value["pid"] == os.getpid()

    def test_worker_failure_is_isolated(self):
        outcomes = WorkerPool(workers=2).map(fail_on_odd, [0, 1, 2, 3])
        assert [o.ok for o in outcomes] == [True, False, True, False]
        failure = outcomes[1].failure
        assert failure.error_type == "RuntimeError"
        assert "odd payload 1" in failure.message
        assert "Traceback" in failure.traceback

    def test_failures_emit_fallback_events(self):
        tel = Telemetry.enabled_default()
        pool = WorkerPool(workers=2, name="test.pool", telemetry=tel)
        pool.map(fail_on_odd, [0, 1, 2, 3])
        fallbacks = [e for e in tel.events() if getattr(e, "kind", "") == "fallback"]
        assert [e.rung for e in fallbacks] == ["worker-1", "worker-3"]
        assert all(e.ladder == "test.pool" and e.status == "error" for e in fallbacks)
        snapshot = tel.metrics_snapshot()
        assert snapshot["counters"]["pool.task_failures"] == 2.0

    def test_budget_expiry_cancels_workers(self):
        budget = Budget(wall_seconds=0.3)
        pool = WorkerPool(workers=2, budget=budget)
        t0 = time.monotonic()
        outcomes = pool.map(sleep_until_cancelled, [None, None])
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0  # cooperative cancel, not the 10s task deadline
        assert all(o.value == "cancelled" for o in outcomes if o.ok)

    def test_first_success_cancels_stragglers(self):
        t0 = time.monotonic()
        outcomes = WorkerPool(workers=2).map(
            sleep_until_cancelled, ["fast", "slow"], first_success=True
        )
        elapsed = time.monotonic() - t0
        # The fast task's success must cancel the slow one well before
        # its 10-second deadline (the cancel event reaches its lease).
        assert elapsed < 5.0
        assert outcomes[0].value == "done"
        assert outcomes[1].value in ("cancelled", None)
