"""Parallel multistart: bit-identical to serial, failure semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.telemetry import Telemetry, use_telemetry
from repro.parallel.pool import supports_process_pool
from repro.runtime.faults import FaultPlan, InjectedFault, inject_faults
from repro.solvers.burkard import MultistartError, solve_qbp_multistart

needs_fork = pytest.mark.skipif(
    not supports_process_pool(), reason="platform lacks fork"
)


def result_key(result):
    return (
        result.cost,
        result.best_feasible_cost,
        result.penalized_cost,
        result.assignment.part.tolist(),
    )


@needs_fork
class TestSerialParallelEquivalence:
    def test_bit_identical_best(self, small_problem):
        serial = solve_qbp_multistart(
            small_problem, restarts=4, iterations=10, seed=9, workers=1
        )
        parallel = solve_qbp_multistart(
            small_problem, restarts=4, iterations=10, seed=9, workers=4
        )
        assert result_key(serial) == result_key(parallel)

    def test_worker_count_does_not_matter(self, small_problem):
        two = solve_qbp_multistart(
            small_problem, restarts=3, iterations=8, seed=5, workers=2
        )
        three = solve_qbp_multistart(
            small_problem, restarts=3, iterations=8, seed=5, workers=3
        )
        assert result_key(two) == result_key(three)

    def test_telemetry_streams_match(self, small_problem):
        def run(workers):
            tel = Telemetry.enabled_default()
            with use_telemetry(tel):
                solve_qbp_multistart(
                    small_problem, restarts=3, iterations=8, seed=2, workers=workers
                )
            return tel

        serial, parallel = run(1), run(3)
        s_snap, p_snap = serial.metrics_snapshot(), parallel.metrics_snapshot()
        assert (
            s_snap["counters"]["solver.iterations"]
            == p_snap["counters"]["solver.iterations"]
        )
        assert s_snap["counters"]["solver.restarts"] == 3.0
        assert p_snap["counters"]["solver.restarts"] == 3.0

        def restart_stream(tel):
            return [
                (e.index, e.best_cost, e.best_feasible_cost)
                for e in tel.events()
                if e.kind == "restart"
            ]

        assert restart_stream(serial) == restart_stream(parallel)

    def test_restart_events_ordered_by_index(self, small_problem):
        tel = Telemetry.enabled_default()
        with use_telemetry(tel):
            solve_qbp_multistart(
                small_problem, restarts=4, iterations=6, seed=0, workers=4
            )
        indexes = [e.index for e in tel.events() if e.kind == "restart"]
        assert indexes == [0, 1, 2, 3]


class TestRestartIndependence:
    def test_restart_k_independent_of_earlier_restarts(self, small_problem):
        # Seed streams: restart k is a function of (seed, k) only, so
        # running MORE restarts never changes the earlier ones' results.
        three = solve_qbp_multistart(
            small_problem, restarts=3, iterations=8, seed=6
        )
        five = solve_qbp_multistart(
            small_problem, restarts=5, iterations=8, seed=6
        )
        # The 5-restart best can only improve on the 3-restart best.
        assert (
            five.best_feasible_cost,
            five.penalized_cost,
        ) <= (three.best_feasible_cost, three.penalized_cost)


class TestFailurePropagation:
    def test_all_restarts_failing_raises_with_first_index(self, small_problem):
        plan = FaultPlan().fail("qbp.iteration", times=None)
        with inject_faults(plan):
            with pytest.raises(MultistartError, match="restart 0"):
                solve_qbp_multistart(
                    small_problem, restarts=3, iterations=5, seed=0
                )

    def test_first_exception_is_the_cause(self, small_problem):
        plan = FaultPlan().fail("qbp.iteration", times=None)
        with inject_faults(plan):
            with pytest.raises(MultistartError) as excinfo:
                solve_qbp_multistart(
                    small_problem, restarts=2, iterations=5, seed=0
                )
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_partial_failures_are_tolerated(self, small_problem):
        # First restart dies, the rest still produce a best result.
        reference = solve_qbp_multistart(
            small_problem, restarts=3, iterations=8, seed=4
        )
        plan = FaultPlan().fail("qbp.iteration", times=1)
        with inject_faults(plan):
            survived = solve_qbp_multistart(
                small_problem, restarts=3, iterations=8, seed=4
            )
        assert survived.penalized_cost is not None
        # Restarts 1..2 are seed-stream independent of restart 0, so the
        # survivor set's best is one of the reference restarts' results.
        assert (
            survived.best_feasible_cost >= reference.best_feasible_cost
        )

    def test_failed_restart_emits_fallback_event(self, small_problem):
        tel = Telemetry.enabled_default()
        plan = FaultPlan().fail("qbp.iteration", times=1)
        with inject_faults(plan):
            with use_telemetry(tel):
                solve_qbp_multistart(
                    small_problem, restarts=2, iterations=5, seed=0
                )
        fallbacks = [e for e in tel.events() if e.kind == "fallback"]
        assert any(
            e.ladder == "qbp.multistart" and e.rung == "worker-0"
            for e in fallbacks
        )

    def test_argument_errors_raise_immediately(self, small_problem):
        with pytest.raises(ValueError):
            solve_qbp_multistart(small_problem, restarts=0)

    def test_error_aggregates_every_failing_restart(self, small_problem):
        plan = FaultPlan().fail("qbp.iteration", times=None)
        with inject_faults(plan):
            with pytest.raises(MultistartError) as excinfo:
                solve_qbp_multistart(
                    small_problem, restarts=3, iterations=5, seed=0
                )
        err = excinfo.value
        assert err.failed_indices == [0, 1, 2]
        assert len(err.failures) == 3
        for index, description in err.failures:
            assert isinstance(index, int)
            assert "InjectedFault" in description or "injected" in description
        assert "failing restarts: 0, 1, 2" in str(err)

    def test_error_without_failures_still_formats(self):
        err = MultistartError("nothing ran")
        assert err.failures == []
        assert err.failed_indices == []


class TestIntegrityGate:
    """Corrupted restart results are rejected, not silently accepted."""

    def test_corrupt_results_rejected_serially(self, small_problem):
        reference = solve_qbp_multistart(
            small_problem, restarts=3, iterations=8, seed=4
        )
        tel = Telemetry.enabled_default()
        plan = FaultPlan().fail_task("worker.corrupt", tasks=[1])
        with inject_faults(plan):
            with use_telemetry(tel):
                survived = solve_qbp_multistart(
                    small_problem, restarts=3, iterations=8, seed=4, workers=1
                )
        # The tampered restart is dropped; the survivors' best can only
        # be no better than the undisturbed best.
        assert survived.best_feasible_cost >= reference.best_feasible_cost
        rejects = [e for e in tel.events() if e.kind == "integrity"]
        assert [e.task for e in rejects] == [1]
        assert tel.metrics_snapshot()["counters"]["pool.integrity_rejects"] == 1.0

    def test_verifier_accepts_honest_results(self, small_problem):
        from repro.solvers.qbp.multistart import multistart_verifier
        from repro.solvers.burkard import solve_qbp

        result = solve_qbp(small_problem, iterations=8, seed=4)
        multistart_verifier(small_problem)(result, payload=None)  # no raise

    def test_verifier_rejects_tampered_cost(self, small_problem):
        from dataclasses import replace

        from repro.parallel.retry import IntegrityError
        from repro.solvers.qbp.multistart import multistart_verifier
        from repro.solvers.burkard import solve_qbp

        result = solve_qbp(small_problem, iterations=8, seed=4)
        tampered = replace(result, cost=result.cost * 0.5)
        with pytest.raises(IntegrityError, match="cost"):
            multistart_verifier(small_problem)(tampered, payload=None)

    @needs_fork
    def test_corrupt_results_rejected_in_processes(self, small_problem):
        tel = Telemetry.enabled_default()
        plan = FaultPlan().fail_task("worker.corrupt", tasks=[0])
        with inject_faults(plan):
            with use_telemetry(tel):
                survived = solve_qbp_multistart(
                    small_problem, restarts=3, iterations=8, seed=4, workers=3
                )
        assert survived.penalized_cost is not None
        rejects = [e for e in tel.events() if e.kind == "integrity"]
        assert [e.task for e in rejects] == [0]


class TestDeterministicSeeding:
    def test_same_seed_reproduces(self, small_problem):
        a = solve_qbp_multistart(small_problem, restarts=2, iterations=8, seed=3)
        b = solve_qbp_multistart(small_problem, restarts=2, iterations=8, seed=3)
        assert result_key(a) == result_key(b)

    def test_generator_seed_supported(self, small_problem):
        a = solve_qbp_multistart(
            small_problem,
            restarts=2,
            iterations=8,
            seed=np.random.default_rng(11),
        )
        b = solve_qbp_multistart(
            small_problem,
            restarts=2,
            iterations=8,
            seed=np.random.default_rng(11),
        )
        assert result_key(a) == result_key(b)
