"""Tests for repro.netlist.component."""

import pytest

from repro.netlist.component import Component


class TestComponent:
    def test_defaults(self):
        c = Component("u1")
        assert c.size == 1.0
        assert c.intrinsic_delay == 0.0
        assert c.attrs == {}

    def test_fields(self):
        c = Component("alu", size=12.5, intrinsic_delay=0.7, attrs={"cluster": 3})
        assert c.name == "alu"
        assert c.size == 12.5
        assert c.intrinsic_delay == 0.7
        assert c.attrs["cluster"] == 3

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Component("")

    def test_rejects_non_string_name(self):
        with pytest.raises(ValueError):
            Component(42)  # type: ignore[arg-type]

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError, match="size"):
            Component("u", size=-1.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="intrinsic_delay"):
            Component("u", intrinsic_delay=-0.1)

    def test_zero_size_allowed(self):
        assert Component("u", size=0.0).size == 0.0

    def test_with_size_copies(self):
        original = Component("u", size=2.0, intrinsic_delay=0.3, attrs={"k": 1})
        resized = original.with_size(5.0)
        assert resized.size == 5.0
        assert resized.name == "u"
        assert resized.intrinsic_delay == 0.3
        assert resized.attrs == {"k": 1}
        assert original.size == 2.0

    def test_equality_ignores_attrs(self):
        assert Component("u", attrs={"a": 1}) == Component("u", attrs={"b": 2})

    def test_inequality_on_size(self):
        assert Component("u", size=1.0) != Component("u", size=2.0)
