"""Tests for repro.netlist.circuit."""

import numpy as np
import pytest

from repro.netlist.circuit import Circuit, Wire
from repro.netlist.component import Component


@pytest.fixture
def abc() -> Circuit:
    ckt = Circuit("abc")
    ckt.add_component("a", size=2.0)
    ckt.add_component("b", size=3.0)
    ckt.add_component("c", size=5.0)
    ckt.add_wire("a", "b", 5.0)
    ckt.add_wire("b", "c", 2.0)
    return ckt


class TestComponents:
    def test_add_returns_index(self):
        ckt = Circuit()
        assert ckt.add_component("x") == 0
        assert ckt.add_component("y") == 1

    def test_add_component_object(self):
        ckt = Circuit()
        ckt.add_component(Component("x", size=7.0))
        assert ckt.component("x").size == 7.0

    def test_kwargs_with_object_rejected(self):
        ckt = Circuit()
        with pytest.raises(TypeError):
            ckt.add_component(Component("x"), size=1.0)

    def test_duplicate_name_rejected(self, abc):
        with pytest.raises(ValueError, match="duplicate"):
            abc.add_component("a")

    def test_index_of_name_and_int(self, abc):
        assert abc.index_of("b") == 1
        assert abc.index_of(1) == 1

    def test_index_of_missing_name(self, abc):
        with pytest.raises(KeyError, match="zz"):
            abc.index_of("zz")

    def test_index_of_out_of_range(self, abc):
        with pytest.raises(IndexError):
            abc.index_of(3)

    def test_sizes_vector(self, abc):
        assert np.array_equal(abc.sizes(), [2.0, 3.0, 5.0])

    def test_total_size(self, abc):
        assert abc.total_size() == 10.0


class TestWires:
    def test_weight_accumulates(self, abc):
        abc.add_wire("a", "b", 1.0)
        assert abc.wire_weight("a", "b") == 6.0

    def test_directed(self, abc):
        assert abc.wire_weight("a", "b") == 5.0
        assert abc.wire_weight("b", "a") == 0.0

    def test_undirected_helper(self):
        ckt = Circuit()
        ckt.add_component("x")
        ckt.add_component("y")
        ckt.add_undirected_wire("x", "y", 2.0)
        assert ckt.wire_weight("x", "y") == 2.0
        assert ckt.wire_weight("y", "x") == 2.0

    def test_num_wires_sums_multiplicity(self, abc):
        assert abc.num_wires == 7.0

    def test_num_connected_pairs(self, abc):
        assert abc.num_connected_pairs == 2

    def test_zero_weight_is_noop(self, abc):
        abc.add_wire("a", "c", 0.0)
        assert abc.wire_weight("a", "c") == 0.0
        assert abc.num_connected_pairs == 2

    def test_self_loop_rejected(self, abc):
        with pytest.raises(ValueError, match="self-loop"):
            abc.add_wire("a", "a")

    def test_negative_weight_rejected(self, abc):
        with pytest.raises(ValueError):
            abc.add_wire("a", "c", -1.0)

    def test_wires_iteration_sorted(self, abc):
        wires = list(abc.wires())
        assert wires == [Wire(0, 1, 5.0), Wire(1, 2, 2.0)]

    def test_neighbors_both_directions(self, abc):
        assert abc.neighbors("b") == [0, 2]
        assert abc.neighbors("a") == [1]


class TestMatrices:
    def test_connection_matrix(self, abc):
        a = abc.connection_matrix()
        expected = np.zeros((3, 3))
        expected[0, 1] = 5.0
        expected[1, 2] = 2.0
        assert np.array_equal(a, expected)

    def test_symmetric_fold(self, abc):
        a = abc.connection_matrix(symmetric=True)
        assert a[1, 0] == 5.0 and a[0, 1] == 5.0

    def test_sparse_matches_dense(self, abc):
        assert np.array_equal(
            abc.sparse_connection_matrix().toarray(), abc.connection_matrix()
        )

    def test_sparse_symmetric_matches(self, abc):
        assert np.array_equal(
            abc.sparse_connection_matrix(symmetric=True).toarray(),
            abc.connection_matrix(symmetric=True),
        )

    def test_empty_circuit_sparse(self):
        ckt = Circuit()
        ckt.add_component("only")
        assert ckt.sparse_connection_matrix().shape == (1, 1)


class TestSubcircuitAndValidate:
    def test_subcircuit_keeps_wires(self, abc):
        sub = abc.subcircuit(["a", "b"])
        assert sub.num_components == 2
        assert sub.wire_weight("a", "b") == 5.0
        assert sub.num_connected_pairs == 1

    def test_subcircuit_drops_external_wires(self, abc):
        sub = abc.subcircuit(["a", "c"])
        assert sub.num_wires == 0

    def test_subcircuit_duplicates_rejected(self, abc):
        with pytest.raises(ValueError, match="duplicate"):
            abc.subcircuit(["a", "a"])

    def test_validate_passes(self, abc):
        abc.validate()

    def test_validate_catches_corruption(self, abc):
        abc._wires[(0, 0)] = 1.0  # simulate corruption
        with pytest.raises(ValueError):
            abc.validate()

    def test_repr_mentions_counts(self, abc):
        assert "components=3" in repr(abc)
