"""Tests for repro.netlist.generate (synthetic circuit generators)."""

import numpy as np
import pytest

from repro.netlist.generate import (
    ClusteredCircuitSpec,
    generate_clustered_circuit,
    generate_random_circuit,
)


class TestSpecValidation:
    def test_rejects_too_few_components(self):
        with pytest.raises(ValueError):
            ClusteredCircuitSpec("x", num_components=1, num_wires=5)

    def test_rejects_wire_budget_below_tree(self):
        with pytest.raises(ValueError, match="num_wires"):
            ClusteredCircuitSpec("x", num_components=10, num_wires=8)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ClusteredCircuitSpec(
                "x", num_components=10, num_wires=20, intra_cluster_probability=1.5
            )

    def test_rejects_bad_size_range(self):
        with pytest.raises(ValueError):
            ClusteredCircuitSpec("x", num_components=10, num_wires=20, size_range=(5, 1))

    def test_auto_cluster_count(self):
        spec = ClusteredCircuitSpec("x", num_components=100, num_wires=200)
        assert spec.resolved_clusters() == 10

    def test_explicit_cluster_count_capped(self):
        spec = ClusteredCircuitSpec(
            "x", num_components=5, num_wires=10, num_clusters=50
        )
        assert spec.resolved_clusters() == 5


class TestExactCounts:
    @pytest.mark.parametrize("n,w", [(10, 9), (20, 60), (50, 400), (100, 150)])
    def test_exact_component_and_wire_counts(self, n, w):
        spec = ClusteredCircuitSpec("x", num_components=n, num_wires=w)
        ckt = generate_clustered_circuit(spec, seed=1)
        assert ckt.num_components == n
        assert ckt.num_wires == w

    def test_table1_sized_circuit(self):
        # ckta's published statistics, at full size.
        spec = ClusteredCircuitSpec("ckta", num_components=339, num_wires=8200)
        ckt = generate_clustered_circuit(spec, seed=0)
        assert ckt.num_components == 339
        assert ckt.num_wires == 8200


class TestStructure:
    def test_connected(self):
        spec = ClusteredCircuitSpec("x", num_components=40, num_wires=60)
        ckt = generate_clustered_circuit(spec, seed=3)
        # BFS over undirected adjacency must reach every component.
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nb in ckt.neighbors(node):
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        assert len(seen) == 40

    def test_sizes_span_two_orders_of_magnitude(self):
        spec = ClusteredCircuitSpec(
            "x", num_components=300, num_wires=600, size_range=(1.0, 100.0)
        )
        ckt = generate_clustered_circuit(spec, seed=5)
        sizes = ckt.sizes()
        assert sizes.min() >= 1.0
        assert sizes.max() <= 100.0
        assert sizes.max() / sizes.min() > 20  # spread actually realised

    def test_every_component_has_cluster_attr(self):
        spec = ClusteredCircuitSpec("x", num_components=30, num_wires=50, num_clusters=5)
        ckt = generate_clustered_circuit(spec, seed=2)
        clusters = {c.attrs["cluster"] for c in ckt.components}
        assert clusters <= set(range(5))
        assert len(clusters) == 5  # all clusters non-empty

    def test_clustering_bias(self):
        # With high intra probability, most wires should stay in-cluster.
        spec = ClusteredCircuitSpec(
            "x",
            num_components=100,
            num_wires=1000,
            num_clusters=5,
            intra_cluster_probability=0.9,
        )
        ckt = generate_clustered_circuit(spec, seed=8)
        cluster = np.array([c.attrs["cluster"] for c in ckt.components])
        intra = sum(
            w.weight for w in ckt.wires() if cluster[w.source] == cluster[w.target]
        )
        assert intra / ckt.num_wires > 0.6

    def test_intrinsic_delays_generated(self):
        spec = ClusteredCircuitSpec("x", num_components=20, num_wires=30, mean_delay=2.0)
        ckt = generate_clustered_circuit(spec, seed=4)
        assert ckt.intrinsic_delays().mean() > 0


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        spec = ClusteredCircuitSpec("x", num_components=30, num_wires=90)
        a = generate_clustered_circuit(spec, seed=77)
        b = generate_clustered_circuit(spec, seed=77)
        assert list(a.wires()) == list(b.wires())
        assert np.array_equal(a.sizes(), b.sizes())

    def test_different_seed_different_circuit(self):
        spec = ClusteredCircuitSpec("x", num_components=30, num_wires=90)
        a = generate_clustered_circuit(spec, seed=1)
        b = generate_clustered_circuit(spec, seed=2)
        assert list(a.wires()) != list(b.wires())


class TestRandomCircuit:
    def test_counts(self):
        ckt = generate_random_circuit(25, 70, seed=1)
        assert ckt.num_components == 25
        assert ckt.num_wires == 70

    def test_single_cluster(self):
        ckt = generate_random_circuit(10, 20, seed=1)
        assert all(c.attrs["cluster"] == 0 for c in ckt.components)
