"""Tests for repro.netlist.stats."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.netlist.stats import circuit_stats


class TestCircuitStats:
    def test_basic_counts(self):
        ckt = Circuit("t")
        ckt.add_component("a", size=2.0)
        ckt.add_component("b", size=8.0)
        ckt.add_wire("a", "b", 3.0)
        stats = circuit_stats(ckt)
        assert stats.name == "t"
        assert stats.num_components == 2
        assert stats.num_wires == 3.0
        assert stats.num_connected_pairs == 1
        assert stats.total_size == 10.0
        assert stats.min_size == 2.0
        assert stats.max_size == 8.0
        assert stats.size_dynamic_range == 4.0
        assert stats.max_wire_multiplicity == 3.0

    def test_mean_degree(self):
        ckt = Circuit("t")
        for name in "abc":
            ckt.add_component(name)
        ckt.add_wire("a", "b")
        ckt.add_wire("b", "c")
        stats = circuit_stats(ckt)
        # Degrees: a=1, b=2, c=1 (bundle endpoints).
        assert stats.mean_degree == pytest.approx(4 / 3)

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            circuit_stats(Circuit())

    def test_zero_size_component_gives_inf_range(self):
        ckt = Circuit("t")
        ckt.add_component("a", size=0.0)
        ckt.add_component("b", size=1.0)
        assert circuit_stats(ckt).size_dynamic_range == float("inf")

    def test_as_row_matches_table1_shape(self):
        spec = ClusteredCircuitSpec("ckta", num_components=50, num_wires=120)
        ckt = generate_clustered_circuit(spec, seed=0)
        row = circuit_stats(ckt).as_row()
        assert row == ["ckta", 50, 120]
