"""Round-trip guarantees for every netlist serialisation format.

The service layer's content-addressed cache keys solve requests by the
serialised circuit document, so parse -> serialize -> parse must be the
identity on every format: a circuit that drifts through a round trip
would silently change its digest (cache misses) or, worse, its physics.
The bundled example circuits are the synthetic twins of the paper's
ckta..cktg (small ``scale`` so the suite stays fast).
"""

from __future__ import annotations

import pytest

from repro.eval.workloads import build_workload, workload_names
from repro.netlist.circuit import Circuit
from repro.netlist.io import circuit_from_dict, circuit_to_dict, load_circuit, save_circuit
from repro.netlist.parsers import (
    NetlistParseError,
    parse_edge_list,
    write_edge_list,
)


def circuits_equal(a: Circuit, b: Circuit) -> bool:
    """Structural equality: names, components, and the full wire set."""
    if a.name != b.name or a.num_components != b.num_components:
        return False
    for ca, cb in zip(a.components, b.components):
        if (ca.name, ca.size, ca.intrinsic_delay) != (cb.name, cb.size, cb.intrinsic_delay):
            return False
    wires_a = {(w.source, w.target): w.weight for w in a.wires()}
    wires_b = {(w.source, w.target): w.weight for w in b.wires()}
    return wires_a == wires_b


@pytest.fixture(scope="module")
def example_circuits():
    return [
        build_workload(name, scale=0.05).circuit for name in workload_names()
    ]


class TestJsonRoundTrip:
    def test_dict_round_trip_is_identity(self, example_circuits):
        for circuit in example_circuits:
            document = circuit_to_dict(circuit)
            rebuilt = circuit_from_dict(document)
            assert circuits_equal(circuit, rebuilt), circuit.name
            # Second lap: the document itself must be stable too.
            assert circuit_to_dict(rebuilt) == document

    def test_file_round_trip_is_identity(self, tmp_path, example_circuits):
        circuit = example_circuits[0]
        path = tmp_path / "circuit.json"
        save_circuit(circuit, path)
        assert circuits_equal(circuit, load_circuit(path))


class TestEdgeListRoundTrip:
    def test_text_round_trip_is_identity(self, example_circuits):
        for circuit in example_circuits:
            text = write_edge_list(circuit)
            rebuilt = parse_edge_list(text, name=circuit.name)
            assert circuits_equal(circuit, rebuilt), circuit.name
            assert write_edge_list(rebuilt) == text


class TestMalformedInputs:
    def test_unknown_directive_is_rejected(self):
        with pytest.raises(NetlistParseError) as err:
            parse_edge_list("component u0 1.0\nfrobnicate u0\n")
        assert err.value.line_number == 2

    def test_wire_to_unknown_component_is_rejected(self):
        with pytest.raises(NetlistParseError):
            parse_edge_list("component u0 1.0\nwire u0 u1 2.0\n")

    def test_json_missing_components_is_rejected(self):
        with pytest.raises(ValueError, match="components"):
            circuit_from_dict({"name": "bad", "wires": []})

    def test_json_malformed_wire_is_rejected(self):
        with pytest.raises(ValueError, match="wire"):
            circuit_from_dict(
                {"name": "bad", "components": [{"name": "u0"}], "wires": [[0]]}
            )

    def test_json_unknown_version_is_rejected(self):
        with pytest.raises(ValueError, match="version"):
            circuit_from_dict({"format_version": 99, "components": []})
