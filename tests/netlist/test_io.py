"""Tests for repro.netlist.io (JSON round-trip)."""

import json

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.netlist.io import (
    circuit_from_dict,
    circuit_to_dict,
    load_circuit,
    save_circuit,
)


@pytest.fixture
def circuit() -> Circuit:
    spec = ClusteredCircuitSpec("roundtrip", num_components=15, num_wires=40)
    return generate_clustered_circuit(spec, seed=9)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, circuit):
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert restored.name == circuit.name
        assert restored.num_components == circuit.num_components
        assert list(restored.wires()) == list(circuit.wires())
        for original, copy in zip(circuit.components, restored.components):
            assert original == copy
            assert original.attrs == copy.attrs

    def test_file_roundtrip(self, circuit, tmp_path):
        path = tmp_path / "ckt.json"
        save_circuit(circuit, path)
        restored = load_circuit(path)
        assert list(restored.wires()) == list(circuit.wires())

    def test_document_is_valid_json(self, circuit, tmp_path):
        path = tmp_path / "ckt.json"
        save_circuit(circuit, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert len(data["components"]) == 15


class TestSchemaValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            circuit_from_dict({"format_version": 99, "components": []})

    def test_missing_components_rejected(self):
        with pytest.raises(ValueError, match="components"):
            circuit_from_dict({"format_version": 1})

    def test_malformed_wire_rejected(self):
        doc = {
            "format_version": 1,
            "components": [{"name": "a"}, {"name": "b"}],
            "wires": [[0]],
        }
        with pytest.raises(ValueError, match="malformed wire"):
            circuit_from_dict(doc)

    def test_wire_without_weight_defaults_to_one(self):
        doc = {
            "format_version": 1,
            "components": [{"name": "a"}, {"name": "b"}],
            "wires": [[0, 1]],
        }
        ckt = circuit_from_dict(doc)
        assert ckt.wire_weight("a", "b") == 1.0

    def test_component_defaults_applied(self):
        doc = {"format_version": 1, "components": [{"name": "a"}]}
        ckt = circuit_from_dict(doc)
        assert ckt.component("a").size == 1.0
