"""Tests for repro.netlist.parsers (text netlist formats)."""

import pytest

from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.netlist.net import NetModel
from repro.netlist.parsers import (
    NetlistParseError,
    load_edge_list,
    parse_edge_list,
    parse_net_list,
    save_edge_list,
    write_edge_list,
)

EDGE_TEXT = """
# a tiny circuit
component a 2.5
component b 1.0 0.3
component c          # default size
wire a b 5
wire b c             # default weight
"""

NET_TEXT = """
component u0 1.0
component u1 1.0
component u2 1.0
net clk u0 u1 u2
net data 2.0 u1 u2
"""


class TestEdgeList:
    def test_parse_components(self):
        ckt = parse_edge_list(EDGE_TEXT)
        assert ckt.num_components == 3
        assert ckt.component("a").size == 2.5
        assert ckt.component("b").intrinsic_delay == 0.3
        assert ckt.component("c").size == 1.0

    def test_parse_wires(self):
        ckt = parse_edge_list(EDGE_TEXT)
        assert ckt.wire_weight("a", "b") == 5.0
        assert ckt.wire_weight("b", "c") == 1.0

    def test_comments_and_blank_lines_ignored(self):
        ckt = parse_edge_list("\n\n# only comments\ncomponent x\n")
        assert ckt.num_components == 1

    def test_unknown_directive(self):
        with pytest.raises(NetlistParseError, match="unknown directive"):
            parse_edge_list("gadget a b\n")

    def test_wire_to_missing_component(self):
        with pytest.raises(NetlistParseError, match="no component"):
            parse_edge_list("component a\nwire a b\n")

    def test_line_number_reported(self):
        try:
            parse_edge_list("component a\nbogus\n")
        except NetlistParseError as err:
            assert err.line_number == 2
        else:  # pragma: no cover
            raise AssertionError

    def test_malformed_component(self):
        with pytest.raises(NetlistParseError):
            parse_edge_list("component a 1 2 3 4\n")

    def test_roundtrip(self):
        spec = ClusteredCircuitSpec("rt", num_components=20, num_wires=50)
        original = generate_clustered_circuit(spec, seed=5)
        restored = parse_edge_list(write_edge_list(original))
        assert restored.num_components == original.num_components
        assert list(restored.wires()) == list(original.wires())

    def test_file_roundtrip(self, tmp_path):
        spec = ClusteredCircuitSpec("rt", num_components=10, num_wires=20)
        original = generate_clustered_circuit(spec, seed=1)
        path = tmp_path / "x.wires"
        save_edge_list(original, path)
        restored = load_edge_list(path)
        assert list(restored.wires()) == list(original.wires())
        assert restored.name == "x"


class TestNetList:
    def test_clique_expansion(self):
        ckt = parse_net_list(NET_TEXT)
        # clk: 3 pins, clique weight 1/2 per pair, both directions.
        assert ckt.wire_weight("u0", "u1") == pytest.approx(0.5)
        # data (2 pins, weight 2) adds 2.0 on u1-u2 over clk's 0.5.
        assert ckt.wire_weight("u1", "u2") == pytest.approx(0.5 + 2.0)

    def test_star_expansion(self):
        ckt = parse_net_list(NET_TEXT, model=NetModel.STAR)
        assert ckt.wire_weight("u0", "u1") == 1.0
        assert ckt.wire_weight("u1", "u2") == 2.0  # data driver u1
        # clk star: u0 drives; no u1-u2 edge from clk.

    def test_weightless_net(self):
        ckt = parse_net_list("component a\ncomponent b\nnet n a b\n")
        assert ckt.wire_weight("a", "b") == 1.0

    def test_net_too_few_pins(self):
        with pytest.raises(NetlistParseError, match="net"):
            parse_net_list("component a\nnet n a\n")
        with pytest.raises(NetlistParseError, match="pins"):
            parse_net_list("component a\ncomponent b\nnet n 2.0 a\n")

    def test_net_with_unknown_pin(self):
        with pytest.raises(NetlistParseError):
            parse_net_list("component a\ncomponent b\nnet n a zz\n")
