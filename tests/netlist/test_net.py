"""Tests for repro.netlist.net (multi-pin net expansion)."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.net import Net, NetModel, expand_nets


@pytest.fixture
def four() -> Circuit:
    ckt = Circuit()
    for name in "wxyz":
        ckt.add_component(name)
    return ckt


class TestNet:
    def test_degree(self):
        net = Net("n1", pins=("w", "x", "y"))
        assert net.degree == 3

    def test_rejects_single_pin(self):
        with pytest.raises(ValueError, match=">= 2 pins"):
            Net("n1", pins=("w",))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Net("n1", pins=("w", "x"), weight=0.0)


class TestCliqueModel:
    def test_two_pin_net_is_single_wire(self, four):
        expand_nets(four, [Net("n", pins=("w", "x"))])
        assert four.wire_weight("w", "x") == 1.0
        assert four.wire_weight("x", "w") == 1.0

    def test_three_pin_weights(self, four):
        expand_nets(four, [Net("n", pins=("w", "x", "y"), weight=2.0)])
        # k=3: each pair gets weight 2 / (3-1) = 1.
        for a, b in (("w", "x"), ("w", "y"), ("x", "y")):
            assert four.wire_weight(a, b) == pytest.approx(1.0)

    def test_pair_count_returned(self, four):
        added = expand_nets(four, [Net("n", pins=("w", "x", "y", "z"))])
        assert added == 6  # C(4, 2)

    def test_total_wire_weight_preserved(self, four):
        # Clique normalisation keeps sum of pairwise weight = w * k / 2.
        expand_nets(four, [Net("n", pins=("w", "x", "y", "z"), weight=3.0)])
        assert four.num_wires == pytest.approx(2 * 3.0 * 4 / 2)


class TestStarModel:
    def test_driver_to_sinks(self, four):
        expand_nets(four, [Net("n", pins=("w", "x", "y"))], model=NetModel.STAR)
        assert four.wire_weight("w", "x") == 1.0
        assert four.wire_weight("w", "y") == 1.0
        assert four.wire_weight("x", "y") == 0.0

    def test_directed_star(self, four):
        expand_nets(
            four, [Net("n", pins=("w", "x"))], model=NetModel.STAR, undirected=False
        )
        assert four.wire_weight("w", "x") == 1.0
        assert four.wire_weight("x", "w") == 0.0


class TestValidation:
    def test_unknown_pin_fails_before_mutation(self, four):
        nets = [Net("good", pins=("w", "x")), Net("bad", pins=("w", "nope"))]
        with pytest.raises(KeyError):
            expand_nets(four, nets)
        assert four.num_wires == 0  # all-or-nothing

    def test_duplicate_pin_rejected(self, four):
        with pytest.raises(ValueError, match="twice"):
            expand_nets(four, [Net("n", pins=("w", "w"))])

    def test_multiple_nets_accumulate(self, four):
        expand_nets(
            four,
            [Net("n1", pins=("w", "x")), Net("n2", pins=("w", "x"))],
        )
        assert four.wire_weight("w", "x") == 2.0
