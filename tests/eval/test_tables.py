"""Tests for repro.eval.tables and repro.utils.tables rendering."""

from repro.eval.harness import ExperimentRow
from repro.eval.paper_data import PAPER_TABLE2
from repro.eval.tables import render_table1, render_table23
from repro.netlist.stats import CircuitStats
from repro.utils.tables import TextTable, format_cell


def stats(name="ckta"):
    return CircuitStats(
        name=name,
        num_components=339,
        num_wires=8200.0,
        num_connected_pairs=4000,
        total_size=1000.0,
        min_size=1.0,
        max_size=100.0,
        size_dynamic_range=100.0,
        mean_degree=10.0,
        max_wire_multiplicity=12.0,
    )


def row(name="ckta"):
    return ExperimentRow(
        name=name,
        with_timing=False,
        start_cost=20756.0,
        qbp_cost=17457.0,
        qbp_improvement=15.9,
        qbp_cpu=86.8,
        gfm_cost=18894.0,
        gfm_improvement=9.0,
        gfm_cpu=12.2,
        gkl_cost=17526.0,
        gkl_improvement=15.6,
        gkl_cpu=544.3,
        all_feasible=True,
    )


class TestTextTable:
    def test_alignment(self):
        t = TextTable(["a", "bbbb"])
        t.add_row([1, 2])
        t.add_row([100, 2000])
        lines = t.render().splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        t = TextTable(["x"], title="My Table")
        t.add_row([1])
        assert t.render().startswith("My Table")

    def test_row_width_checked(self):
        t = TextTable(["a", "b"])
        try:
            t.add_row([1])
        except ValueError as err:
            assert "2 columns" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_format_cell(self):
        assert format_cell(1.25) == "1.2"
        assert format_cell(7) == "7"
        assert format_cell(True) == "yes"
        assert format_cell(float("nan")) == "-"
        assert format_cell("x") == "x"


class TestRenderTable1:
    def test_contains_circuit_and_paper_columns(self):
        out = render_table1([(stats(), 3464)])
        assert "ckta" in out
        assert "339" in out
        assert "8200" in out
        assert "3464" in out
        # Published reference column present:
        assert "339 / 8200 / 3464" in out

    def test_unknown_circuit_gets_dash(self):
        out = render_table1([(stats("mystery"), 5)])
        assert "-" in out


class TestRenderTable23:
    def test_without_paper(self):
        out = render_table23([row()], with_timing=False, paper=None)
        assert "II." in out
        assert "17457" in out
        assert "(paper)" not in out

    def test_with_paper_rows(self):
        out = render_table23([row()], with_timing=False, paper=PAPER_TABLE2)
        assert "(paper)" in out
        assert "20756" in out

    def test_timing_title(self):
        out = render_table23([row()], with_timing=True, paper=None)
        assert "III." in out
