"""Tests for repro.eval.ablations (programmatic ablation runners)."""

import pytest

from repro.eval.ablations import (
    main,
    render_records,
    run_eta_ablation,
    run_initial_robustness,
    run_iteration_sweep,
    run_penalty_ablation,
)
from repro.eval.harness import shared_initial_solution
from repro.eval.workloads import build_workload


@pytest.fixture(scope="module")
def setting():
    workload = build_workload("cktb", scale=0.12)
    initial = shared_initial_solution(workload, seed=0)
    return workload, initial


class TestRunners:
    def test_penalty_records(self, setting):
        workload, initial = setting
        records = run_penalty_ablation(workload, initial, iterations=5)
        assert len(records) == 3
        assert all(r.dimension == "penalty" for r in records)
        assert all(r.final_cost <= r.start_cost + 1e-9 for r in records)

    def test_eta_records(self, setting):
        workload, initial = setting
        records = run_eta_ablation(workload, initial, iterations=5)
        assert {r.setting for r in records} == {"burkard", "diagonal", "symmetric"}

    def test_iteration_sweep_monotone(self, setting):
        workload, initial = setting
        records = run_iteration_sweep(workload, initial, sweep=(2, 10))
        assert records[1].final_cost <= records[0].final_cost + 1e-9

    def test_initial_robustness(self, setting):
        workload, initial = setting
        records = run_initial_robustness(
            workload, initial, iterations=5, greedy_seeds=(1,)
        )
        assert len(records) == 2
        assert records[0].setting == "bootstrap"

    def test_improvement_percent(self, setting):
        workload, initial = setting
        record = run_iteration_sweep(workload, initial, sweep=(3,))[0]
        expected = 100 * (record.start_cost - record.final_cost) / record.start_cost
        assert record.improvement_percent == pytest.approx(expected)


class TestRendering:
    def test_render(self, setting):
        workload, initial = setting
        records = run_iteration_sweep(workload, initial, sweep=(2,))
        out = render_records(records)
        assert "setting" in out and "cpu(s)" in out


def test_cli(capsys):
    code = main(["--circuit", "cktb", "--scale", "0.12", "--iterations", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ablation: penalty" in out
    assert "ablation: eta_mode" in out
