"""Tests for repro.eval.workloads (the synthetic Table I twins)."""

import numpy as np
import pytest

from repro.core.constraints import check_feasibility
from repro.eval.paper_data import PAPER_TABLE1, NUM_PARTITIONS
from repro.eval.workloads import (
    build_workload,
    cluster_reference,
    workload_names,
)


class TestTable1Fidelity:
    """Full-scale workloads must reproduce Table I exactly."""

    @pytest.mark.parametrize("name", workload_names())
    def test_exact_published_statistics(self, name):
        workload = build_workload(name)
        paper = PAPER_TABLE1[name]
        assert workload.circuit.num_components == paper.num_components
        assert workload.circuit.num_wires == paper.num_wires
        assert workload.timing.num_pairs == paper.num_timing_constraints

    def test_sixteen_partitions_4x4_manhattan(self):
        workload = build_workload("cktb")
        topo = workload.topology
        assert topo.num_partitions == NUM_PARTITIONS
        assert topo.cost_matrix.max() == 6.0  # 4x4 grid diameter
        assert np.array_equal(topo.cost_matrix, topo.delay_matrix)

    def test_sizes_span_two_orders_of_magnitude(self):
        workload = build_workload("cktb")
        sizes = workload.circuit.sizes()
        assert sizes.max() / sizes.min() > 20


class TestFeasibilityWitness:
    def test_reference_is_fully_feasible(self):
        workload = build_workload("cktb")
        report = check_feasibility(workload.problem, workload.reference)
        assert report.feasible

    def test_reference_feasible_on_all_scaled_workloads(self):
        for name in workload_names():
            workload = build_workload(name, scale=0.15)
            report = check_feasibility(workload.problem, workload.reference)
            assert report.feasible, name


class TestScaling:
    def test_scale_shrinks_proportionally(self):
        workload = build_workload("ckta", scale=0.25)
        paper = PAPER_TABLE1["ckta"]
        assert workload.circuit.num_components == round(paper.num_components * 0.25)
        assert workload.circuit.num_wires == round(paper.num_wires * 0.25)
        assert workload.timing.num_pairs == round(paper.num_timing_constraints * 0.25)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            build_workload("ckta", scale=0.0)
        with pytest.raises(ValueError):
            build_workload("ckta", scale=1.5)

    def test_unknown_circuit(self):
        with pytest.raises(KeyError):
            build_workload("cktz")


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = build_workload("cktb", scale=0.2)
        b = build_workload("cktb", scale=0.2)
        assert list(a.circuit.wires()) == list(b.circuit.wires())
        assert list(a.timing.items()) == list(b.timing.items())
        assert a.reference == b.reference

    def test_custom_seed_changes_instance(self):
        a = build_workload("cktb", scale=0.2, seed=1)
        b = build_workload("cktb", scale=0.2, seed=2)
        assert list(a.circuit.wires()) != list(b.circuit.wires())


class TestClusterReference:
    def test_capacity_feasible(self):
        workload = build_workload("cktb", scale=0.3)
        ref = cluster_reference(workload.circuit, workload.topology)
        report = check_feasibility(workload.problem_no_timing, ref)
        assert not report.capacity_violations

    def test_clusters_land_close_together(self):
        workload = build_workload("cktb", scale=0.3)
        ref = cluster_reference(workload.circuit, workload.topology)
        clusters = np.array(
            [c.attrs["cluster"] for c in workload.circuit.components]
        )
        delay = workload.topology.delay_matrix
        spreads = []
        for c in np.unique(clusters):
            members = np.flatnonzero(clusters == c)
            positions = ref.part[members]
            spreads.append(delay[positions[:, None], positions[None, :]].max())
        # Cluster-contiguous placement: most clusters fit in a small ball.
        assert np.median(spreads) <= 3.0
