"""Tests for scripts/update_experiments.py (EXPERIMENTS.md generator)."""

import importlib.util
import json
import pathlib
import sys

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2] / "scripts" / "update_experiments.py"
)


@pytest.fixture
def updater():
    spec = importlib.util.spec_from_file_location("update_experiments", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def fake_row(name, qbp=80.0, gfm=90.0, gkl=85.0):
    start = 100.0
    return {
        "name": name,
        "with_timing": False,
        "start_cost": start,
        "qbp_cost": qbp,
        "qbp_improvement": 100 * (start - qbp) / start,
        "qbp_cpu": 1.0,
        "gfm_cost": gfm,
        "gfm_improvement": 100 * (start - gfm) / start,
        "gfm_cpu": 0.5,
        "gkl_cost": gkl,
        "gkl_improvement": 100 * (start - gkl) / start,
        "gkl_cpu": 2.0,
        "all_feasible": True,
    }


NAMES = ["ckta", "cktb", "cktc", "cktd", "ckte", "cktf", "cktg"]


class TestUpdater:
    def test_renders_and_replaces_block(self, updater, tmp_path, monkeypatch):
        results = {
            "table2": [fake_row(n) for n in NAMES],
            "table3": [fake_row(n, qbp=85.0) for n in NAMES],
        }
        results_path = tmp_path / "r.json"
        results_path.write_text(json.dumps(results))
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(
            "# header\n\n<!-- RESULTS:BEGIN -->\nplaceholder\n<!-- RESULTS:END -->\n\ntail\n"
        )
        monkeypatch.setattr(
            sys, "argv", ["x", str(results_path), str(doc)]
        )
        assert updater.main() == 0
        text = doc.read_text()
        assert "placeholder" not in text
        assert "Table II — without timing" in text
        assert "Shape analysis" in text
        assert "*(paper)*" in text
        assert text.startswith("# header")
        assert text.rstrip().endswith("tail")

    def test_shape_analysis_wins(self, updater):
        rows = [fake_row(n) for n in NAMES]  # QBP best everywhere
        out = updater.shape_analysis(rows, rows)
        assert "best-quality wins: QBP 7, GFM 0, GKL 0" in out
        assert "violation-free: yes" in out
