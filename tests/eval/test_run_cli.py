"""Tests for the command-line entry point (python -m repro.eval.run)."""

import json

import pytest

from repro.eval.run import main


class TestCli:
    def test_table1_only(self, capsys):
        code = main(["--table", "1", "--scale", "0.12", "--circuits", "cktb"])
        assert code == 0
        out = capsys.readouterr().out
        assert "circuit descriptions" in out
        assert "cktb" in out

    def test_table2_with_json(self, capsys, tmp_path):
        path = tmp_path / "rows.json"
        code = main(
            [
                "--table",
                "2",
                "--scale",
                "0.12",
                "--iterations",
                "5",
                "--circuits",
                "cktb",
                "--json",
                str(path),
                "--no-paper",
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert "table2" in payload
        row = payload["table2"][0]
        assert row["name"] == "cktb"
        assert row["all_feasible"] is True
        out = capsys.readouterr().out
        assert "Without Timing" in out
        assert "(paper)" not in out

    def test_table3_prints_paper_rows_by_default(self, capsys):
        code = main(
            ["--table", "3", "--scale", "0.12", "--iterations", "5", "--circuits", "cktb"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "With Timing" in out
        assert "(paper)" in out
        assert "mean improvement" in out

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["--circuits", "nope"])
