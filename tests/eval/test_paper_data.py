"""Tests for repro.eval.paper_data (published-number integrity)."""

from repro.eval.paper_data import (
    CIRCUIT_NAMES,
    GKL_OUTER_LOOPS,
    NUM_PARTITIONS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    QBP_ITERATIONS,
    paper_mean_improvements,
)


class TestTables:
    def test_all_seven_circuits_everywhere(self):
        assert set(PAPER_TABLE1) == set(CIRCUIT_NAMES)
        assert set(PAPER_TABLE2) == set(CIRCUIT_NAMES)
        assert set(PAPER_TABLE3) == set(CIRCUIT_NAMES)

    def test_start_columns_shared_between_tables(self):
        # Both tables report the same initial solution per circuit.
        for name in CIRCUIT_NAMES:
            assert PAPER_TABLE2[name].start == PAPER_TABLE3[name].start

    def test_improvements_match_costs(self):
        # The published -% columns are consistent with start/final costs.
        # (Three Table III cells are off by up to 0.4 points in the
        # original - presumably scanning/rounding artefacts - so the
        # tolerance is 0.5.)
        for table in (PAPER_TABLE2, PAPER_TABLE3):
            for row in table.values():
                for solver in (row.qbp, row.gfm, row.gkl):
                    pct = 100.0 * (row.start - solver.final) / row.start
                    assert abs(pct - solver.improvement_percent) < 0.5, row.name

    def test_constants(self):
        assert NUM_PARTITIONS == 16
        assert QBP_ITERATIONS == 100
        assert GKL_OUTER_LOOPS == 6


class TestPublishedShape:
    """The claims the reproduction must reproduce, asserted on the paper's
    own numbers first (so the shape checks test the right thing)."""

    def test_qbp_beats_gfm_everywhere(self):
        for table in (PAPER_TABLE2, PAPER_TABLE3):
            for row in table.values():
                assert row.qbp.final < row.gfm.final

    def test_gfm_is_cheapest_gkl_most_expensive(self):
        for table in (PAPER_TABLE2, PAPER_TABLE3):
            for row in table.values():
                assert row.gfm.cpu_seconds < row.qbp.cpu_seconds
                assert row.qbp.cpu_seconds < row.gkl.cpu_seconds

    def test_timing_reduces_improvements(self):
        for name in CIRCUIT_NAMES:
            assert (
                PAPER_TABLE3[name].qbp.improvement_percent
                <= PAPER_TABLE2[name].qbp.improvement_percent
            )

    def test_gfm_degrades_most_under_timing(self):
        means = paper_mean_improvements()
        drop = {key: t2 - t3 for key, (t2, t3) in means.items()}
        assert drop["gfm"] >= drop["qbp"] - 1.0  # GFM suffers at least as much

    def test_qbp_mean_improvement_is_best(self):
        means = paper_mean_improvements()
        assert means["qbp"][0] > means["gfm"][0]
        assert means["qbp"][0] > means["gkl"][0]
        assert means["qbp"][1] > means["gfm"][1]
        assert means["qbp"][1] > means["gkl"][1]
