"""Tests for repro.eval.harness (scaled-down experiment runs)."""

import pytest

from repro.eval.harness import (
    ExperimentRow,
    run_circuit_experiment,
    run_table,
    shared_initial_solution,
    summarize_rows,
)
from repro.eval.workloads import build_workload
from repro.core.constraints import check_feasibility


@pytest.fixture(scope="module")
def small_workload():
    return build_workload("cktb", scale=0.15)


class TestSharedInitial:
    def test_feasible_for_both_problems(self, small_workload):
        initial = shared_initial_solution(small_workload, seed=0)
        assert check_feasibility(small_workload.problem, initial).feasible
        assert check_feasibility(small_workload.problem_no_timing, initial).feasible


class TestRunCircuitExperiment:
    @pytest.fixture(scope="class")
    def row(self, small_workload):
        return run_circuit_experiment(
            small_workload, with_timing=True, qbp_iterations=15, seed=0
        )

    def test_row_fields(self, row, small_workload):
        assert row.name == "cktb"
        assert row.with_timing
        assert row.start_cost > 0
        assert row.all_feasible

    def test_no_solver_worsens_start(self, row):
        assert row.qbp_cost <= row.start_cost + 1e-9
        assert row.gfm_cost <= row.start_cost + 1e-9
        assert row.gkl_cost <= row.start_cost + 1e-9

    def test_improvements_consistent(self, row):
        for cost, pct in (
            (row.qbp_cost, row.qbp_improvement),
            (row.gfm_cost, row.gfm_improvement),
            (row.gkl_cost, row.gkl_improvement),
        ):
            expected = 100.0 * (row.start_cost - cost) / row.start_cost
            assert pct == pytest.approx(expected)

    def test_to_dict_roundtrip(self, row):
        data = row.to_dict()
        assert data["name"] == "cktb"
        assert set(data) >= {"start_cost", "qbp_cost", "gfm_cost", "gkl_cost"}

    def test_solver_costs_view(self, row):
        costs = row.solver_costs()
        assert set(costs) == {"qbp", "gfm", "gkl"}


class TestRunTable:
    def test_table2_runs_on_subset(self, small_workload):
        rows = run_table(
            2,
            scale=0.15,
            qbp_iterations=10,
            circuits=["cktb"],
            workloads={"cktb": small_workload},
        )
        assert len(rows) == 1
        assert not rows[0].with_timing

    def test_table3_runs_on_subset(self, small_workload):
        rows = run_table(
            3,
            scale=0.15,
            qbp_iterations=10,
            circuits=["cktb"],
            workloads={"cktb": small_workload},
        )
        assert rows[0].with_timing
        assert rows[0].all_feasible

    def test_rejects_bad_table(self):
        with pytest.raises(ValueError):
            run_table(4)


def test_summarize_rows():
    row = ExperimentRow(
        name="x",
        with_timing=False,
        start_cost=100.0,
        qbp_cost=80.0,
        qbp_improvement=20.0,
        qbp_cpu=1.0,
        gfm_cost=90.0,
        gfm_improvement=10.0,
        gfm_cpu=0.5,
        gkl_cost=85.0,
        gkl_improvement=15.0,
        gkl_cpu=2.0,
        all_feasible=True,
    )
    means = summarize_rows([row, row])
    assert means == {"qbp": 20.0, "gfm": 10.0, "gkl": 15.0}
    assert summarize_rows([]) == {}
