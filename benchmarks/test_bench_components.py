"""Micro-benchmarks of the library's hot paths.

Not tied to one paper table; these track the cost of the primitives the
tables are built from (eta evaluation, one GAP solve, one GFM pass, one
GKL pass, STA, feasibility checking) so performance regressions are
visible in isolation.
"""

import numpy as np
import pytest

from repro.baselines.engine import GainEngine
from repro.baselines.gfm import _run_pass as gfm_pass
from repro.baselines.gkl import _run_pass as gkl_pass
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.solvers.gap import solve_gap
from repro.timing.graph import TimingGraph

CIRCUIT = "cktd"


@pytest.fixture(scope="module")
def setting(request):
    workloads = request.getfixturevalue("workloads")
    initials = request.getfixturevalue("initials")
    return workloads[CIRCUIT], initials[CIRCUIT]


def test_bench_objective_evaluation(benchmark, setting):
    workload, initial = setting
    evaluator = ObjectiveEvaluator(workload.problem)
    cost = benchmark(evaluator.cost, initial)
    assert cost > 0


def test_bench_penalized_cost(benchmark, setting):
    workload, initial = setting
    evaluator = ObjectiveEvaluator(workload.problem)
    benchmark(evaluator.penalized_cost, initial, 50.0)


def test_bench_feasibility_check(benchmark, setting):
    workload, initial = setting
    report = benchmark(check_feasibility, workload.problem, initial)
    assert report.feasible


def test_bench_gap_solve(benchmark, setting):
    workload, initial = setting
    problem = workload.problem
    rng = np.random.default_rng(0)
    cost = rng.uniform(0, 10, (problem.num_partitions, problem.num_components))
    result = benchmark(
        solve_gap, cost, problem.sizes(), problem.capacities()
    )
    assert result.num_items == problem.num_components


def test_bench_gain_engine_build(benchmark, setting):
    workload, initial = setting
    engine = benchmark(GainEngine, workload.problem, initial)
    assert engine.n == workload.num_components


def test_bench_gfm_pass(benchmark, setting):
    workload, initial = setting

    def one_pass():
        engine = GainEngine(workload.problem, initial)
        return gfm_pass(engine, None)

    improvement, moves = benchmark.pedantic(one_pass, rounds=1)
    assert moves >= 0


def test_bench_gkl_pass(benchmark, setting):
    workload, initial = setting

    def one_pass():
        engine = GainEngine(workload.problem, initial)
        return gkl_pass(engine, None)

    improvement, swaps = benchmark.pedantic(one_pass, rounds=1)
    assert swaps >= 0


def test_bench_sta(benchmark, setting):
    workload, _ = setting
    graph = TimingGraph.from_circuit(workload.circuit)
    report = benchmark(graph.analyze, 1e9)
    assert report.critical_path_delay > 0
