"""Ablation: the timing-violation penalty magnitude (Section 3.2).

The paper fixes the penalty at 50 and argues (Theorem 2) that *any*
value works as long as the minimiser lands timing-feasible, while
Theorem 1's exact constant ``U`` can be astronomically large
(numerically risky).  This ablation runs the QBP solver across penalty
regimes on one circuit and reports quality; all regimes must return
violation-free solutions.
"""

import pytest

from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.solvers.burkard import resolve_penalty, solve_qbp

CIRCUIT = "cktb"
PENALTIES = ["paper", None, "theorem1"]
IDS = ["paper-50", "auto", "theorem1-U"]


@pytest.mark.parametrize("penalty", PENALTIES, ids=IDS)
def test_bench_penalty_regime(benchmark, penalty, workloads, initials):
    workload = workloads[CIRCUIT]
    problem = workload.problem
    initial = initials[CIRCUIT]
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={"iterations": 40, "initial": initial, "seed": 0, "penalty": penalty},
        rounds=1,
    )
    assignment = result.best_feasible_assignment or initial
    final = evaluator.cost(assignment)
    value = resolve_penalty(problem, penalty)
    print(f"\n[penalty={value:g}] start={start:.0f} final={final:.0f} "
          f"(-{100 * (start - final) / start:.1f}%)")
    assert check_feasibility(problem, assignment).feasible
