"""Benchmarks for the Section 2.2 applications (MCM/TCM and QAP)."""

import numpy as np
import pytest

from repro.apps.mcm import repartition_mcm
from repro.apps.qap import random_qap_instance, solve_qap
from repro.core.assignment import Assignment

CIRCUIT = "cktb"


def test_bench_mcm_repartition(benchmark, workloads):
    """The TCM flow: legalise an intuition-based assignment (PP(1,0))."""
    workload = workloads[CIRCUIT]
    circuit, topology = workload.circuit, workload.topology
    rng = np.random.default_rng(0)
    clusters = np.array([c.attrs["cluster"] for c in circuit.components])
    slots = rng.integers(0, topology.num_partitions, size=int(clusters.max()) + 1)
    designer = Assignment(slots[clusters], topology.num_partitions)

    result = benchmark.pedantic(
        repartition_mcm,
        args=(circuit, topology, designer),
        kwargs={"iterations": 40, "seed": 0},
        rounds=1,
    )
    print(f"\n[MCM] deviation={result.total_deviation:.0f} "
          f"moved={result.moved_components} feasible={result.feasible}")
    assert result.feasible


@pytest.mark.parametrize("n", [20, 50])
def test_bench_qap(benchmark, n):
    """Burkard's original heuristic on Nugent-style QAP instances."""
    flow, distance = random_qap_instance(n, seed=1)
    result = benchmark.pedantic(
        solve_qap,
        args=(flow, distance),
        kwargs={"iterations": 100, "seed": 0},
        rounds=1,
    )
    identity = float((flow * distance[: n, : n]).sum())  # loose reference
    print(f"\n[QAP n={n}] cost={result.cost:.0f}")
    assert sorted(result.permutation.tolist()) == list(range(n))
