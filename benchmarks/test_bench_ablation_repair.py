"""Ablation: the feasibility-projection enhancements (DESIGN.md §4b).

Runs the timing-constrained QBP solve with the iterate projection
machinery on (default) and off (the paper's pseudocode behaviour, where
only iterates that happen to be violation-free can update the feasible
incumbent).  Quantifies what the enhancement buys on dense instances.
"""

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.solvers.burkard import solve_qbp

CIRCUIT = "cktb"
MODES = [True, False]
IDS = ["projection-on", "projection-off"]


@pytest.mark.parametrize("repair", MODES, ids=IDS)
def test_bench_repair_ablation(benchmark, repair, workloads, initials):
    workload = workloads[CIRCUIT]
    problem = workload.problem
    initial = initials[CIRCUIT]
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={
            "iterations": 40,
            "initial": initial,
            "seed": 0,
            "repair_iterates": repair,
        },
        rounds=1,
    )
    assignment = result.best_feasible_assignment or initial
    final = min(evaluator.cost(assignment), start)
    print(f"\n[repair={repair}] start={start:.0f} final={final:.0f} "
          f"(-{100 * (start - final) / start:.1f}%)")
    assert final <= start + 1e-9
