"""Ablation: iteration count vs solution quality.

The paper: "the solution quality is dependent on the number of
iterations, the more CPU time spent, the better the results" and "the
user can have precise control over the total runtime".  This sweep
verifies both properties: quality is monotone non-increasing in
iteration count (the incumbent never worsens) and runtime scales
roughly linearly.
"""

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.solvers.burkard import solve_qbp

CIRCUIT = "cktb"
SWEEP = [5, 25, 100]

_results = {}


@pytest.mark.parametrize("iterations", SWEEP)
def test_bench_iteration_sweep(benchmark, iterations, workloads, initials):
    workload = workloads[CIRCUIT]
    problem = workload.problem_no_timing
    initial = initials[CIRCUIT]
    evaluator = ObjectiveEvaluator(problem)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={"iterations": iterations, "initial": initial, "seed": 0},
        rounds=1,
    )
    final = min(result.best_feasible_cost, evaluator.cost(initial))
    _results[iterations] = final
    print(f"\n[iterations={iterations}] final={final:.0f}")

    # Monotonicity across the sweep so far (pytest runs params in order).
    costs = [_results[k] for k in sorted(_results)]
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
