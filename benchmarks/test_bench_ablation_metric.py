"""Ablation: arbitrary interconnection cost metrics (Section 2.1 / 5).

The formulation supports "any type of interconnection cost metrics";
the baselines were generalized likewise ("we allow arbitrary
interconnection cost (e.g. Manhattan wire length, quadratic wire
length, or just total number of wire crossings) for GFM and GKL").
This ablation re-solves one circuit under all three metrics with all
three methods.
"""

import numpy as np
import pytest

from repro.baselines.gfm import gfm_partition
from repro.baselines.gkl import gkl_partition
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import PartitioningProblem
from repro.solvers.burkard import solve_qbp
from repro.solvers.greedy import greedy_feasible_assignment
from repro.topology.grid import grid_topology

CIRCUIT = "cktb"
METRICS = ["manhattan", "quadratic", "uniform"]
SOLVERS = ["qbp", "gfm", "gkl"]


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_bench_metric(benchmark, metric, solver, workloads):
    workload = workloads[CIRCUIT]
    circuit = workload.circuit
    base = workload.topology
    topo = grid_topology(
        4, 4, capacity=base.capacities().tolist(), metric=metric
    )
    problem = PartitioningProblem(circuit, topo, name=f"{CIRCUIT}-{metric}")
    initial = greedy_feasible_assignment(problem, seed=0)
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    if solver == "qbp":
        run = lambda: solve_qbp(problem, iterations=30, initial=initial, seed=0)
        result = benchmark.pedantic(run, rounds=1)
        final = min(result.best_feasible_cost, start)
    elif solver == "gfm":
        result = benchmark.pedantic(gfm_partition, args=(problem, initial), rounds=1)
        final = result.cost
    else:
        result = benchmark.pedantic(
            gkl_partition, args=(problem, initial), rounds=1
        )
        final = result.cost
    print(f"\n[{metric}/{solver}] start={start:.0f} final={final:.0f} "
          f"(-{100 * (start - final) / start:.1f}%)")
    assert final <= start + 1e-9
