"""Benchmark: regenerate Table II (without timing constraints).

One benchmark per (circuit, solver) cell: QBP for ``bench_iterations``
iterations, GFM to convergence, GKL with the paper's 6-outer-loop
cutoff - all from the shared bootstrap initial solution, on the
timing-relaxed problems.  The solver CPU columns of Table II are
exactly these benchmark times.
"""

import pytest

from repro.baselines.gfm import gfm_partition
from repro.baselines.gkl import gkl_partition
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.eval.workloads import workload_names
from repro.solvers.burkard import solve_qbp

CIRCUITS = workload_names()


@pytest.mark.parametrize("name", CIRCUITS)
def test_bench_table2_qbp(benchmark, name, workloads, initials, bench_iterations):
    workload = workloads[name]
    problem = workload.problem_no_timing
    initial = initials[name]
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={"iterations": bench_iterations, "initial": initial, "seed": 0},
        rounds=1,
    )
    final = min(result.best_feasible_cost, start)
    print(f"\n[Table II / {name}] QBP: start={start:.0f} final={final:.0f} "
          f"(-{100 * (start - final) / start:.1f}%)")
    assert final <= start


@pytest.mark.parametrize("name", CIRCUITS)
def test_bench_table2_gfm(benchmark, name, workloads, initials):
    workload = workloads[name]
    problem = workload.problem_no_timing
    initial = initials[name]

    result = benchmark.pedantic(gfm_partition, args=(problem, initial), rounds=1)
    print(f"\n[Table II / {name}] GFM: start={result.initial_cost:.0f} "
          f"final={result.cost:.0f} (-{result.improvement_percent:.1f}%)")
    assert result.feasible
    assert check_feasibility(problem, result.assignment).feasible


@pytest.mark.parametrize("name", CIRCUITS)
def test_bench_table2_gkl(benchmark, name, workloads, initials):
    workload = workloads[name]
    problem = workload.problem_no_timing
    initial = initials[name]

    result = benchmark.pedantic(gkl_partition, args=(problem, initial), rounds=1)
    print(f"\n[Table II / {name}] GKL: start={result.initial_cost:.0f} "
          f"final={result.cost:.0f} (-{result.improvement_percent:.1f}%)")
    assert result.feasible
