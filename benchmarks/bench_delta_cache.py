#!/usr/bin/env python
"""Microbenchmark: DeltaCache incremental updates vs naive full recompute.

Replays the same fixed-seed random move sequence on the eval-small
workload (``ckta`` at scale 0.1) twice:

* **incremental** — one :class:`repro.engine.delta.DeltaCache` kept
  up to date through :meth:`apply_move` (the engine's O(neighbourhood)
  refresh),
* **naive** — the full ``(N, M)`` delta matrix rebuilt from scratch
  after every move (what a solver without the kernel would pay).

Both paths produce bit-identical delta matrices (asserted), so the only
difference is time.  Emits a ``metrics-snapshot-v1`` JSON compatible
with ``scripts/check_bench.py``:

* counters ``bench.delta_moves`` / ``bench.delta_cells`` are
  deterministic (zero drift tolerance),
* gauges ``bench.delta_incremental_seconds`` /
  ``bench.delta_naive_seconds`` are wall-clock (wide tolerance).

Usage::

    PYTHONPATH=src python benchmarks/bench_delta_cache.py --out current.json
    python scripts/check_bench.py current.json \\
        --baseline benchmarks/baselines/delta-cache.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.engine.delta import DeltaCache
from repro.eval.harness import shared_initial_solution
from repro.eval.workloads import build_workload
from repro.obs.metrics import METRICS_SNAPSHOT_FORMAT

SCALE = 0.1
CIRCUIT = "ckta"
MOVES = 200
SEED = 17
INITIAL_SEED = 1


def move_sequence(problem, initial, rng):
    """A deterministic, capacity-respecting random move sequence."""
    cache = DeltaCache(problem, initial)
    moves = []
    while len(moves) < MOVES:
        j = int(rng.integers(0, problem.num_components))
        i = int(rng.integers(0, problem.num_partitions))
        if i == int(cache.part[j]) or not cache.capacity.move_fits(j, i):
            continue
        cache.apply_move(j, i)
        moves.append((j, i))
    return moves


def run_incremental(problem, initial, moves):
    cache = DeltaCache(problem, initial)
    t0 = time.perf_counter()
    for j, i in moves:
        cache.apply_move(j, i)
    elapsed = time.perf_counter() - t0
    return elapsed, cache.delta


def run_naive(problem, initial, moves):
    cache = DeltaCache(problem, initial)
    t0 = time.perf_counter()
    for j, i in moves:
        old_i = int(cache.part[j])
        cache.part[j] = i
        cache.capacity.apply_move(j, old_i, i)
        cache.delta = cache._full_delta()
        cache.timing_block = cache._full_timing_block()
    elapsed = time.perf_counter() - t0
    return elapsed, cache.delta


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None, help="snapshot path")
    args = parser.parse_args()

    workload = build_workload(CIRCUIT, scale=SCALE)
    problem = workload.problem
    initial = shared_initial_solution(workload, seed=INITIAL_SEED)
    moves = move_sequence(problem, initial, np.random.default_rng(SEED))

    incremental_s, incremental_delta = run_incremental(problem, initial, moves)
    naive_s, naive_delta = run_naive(problem, initial, moves)
    if not np.allclose(incremental_delta, naive_delta, atol=1e-9):
        raise AssertionError("incremental and naive deltas diverged")

    snapshot = {
        "format": METRICS_SNAPSHOT_FORMAT,
        "counters": {
            "bench.delta_moves": float(len(moves)),
            "bench.delta_cells": float(
                problem.num_components * problem.num_partitions
            ),
        },
        "gauges": {
            "bench.delta_incremental_seconds": incremental_s,
            "bench.delta_naive_seconds": naive_s,
        },
        "histograms": {},
    }
    text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    speedup = naive_s / incremental_s if incremental_s else float("inf")
    print(
        f"# {len(moves)} moves on {CIRCUIT}@{SCALE}: "
        f"incremental {incremental_s:.4f}s, naive {naive_s:.4f}s "
        f"({speedup:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
