"""Extension benchmark: all five methods on one circuit.

Beyond the paper's three (QBP / GFM / GKL), the library ships a
Barnes-style spectral partitioner (the formulation family the paper's
introduction contrasts against) and a simulated-annealing baseline.
This benchmark lines all five up on the same problem and start.
"""

import pytest

from repro.baselines.annealing import annealing_partition
from repro.baselines.gfm import gfm_partition
from repro.baselines.gkl import gkl_partition
from repro.baselines.spectral import spectral_partition
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.solvers.burkard import solve_qbp

CIRCUIT = "cktb"
METHODS = ["qbp", "gfm", "gkl", "annealing", "spectral"]


@pytest.mark.parametrize("method", METHODS)
def test_bench_five_methods(benchmark, method, workloads, initials):
    workload = workloads[CIRCUIT]
    problem = workload.problem_no_timing
    initial = initials[CIRCUIT]
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    if method == "qbp":
        run = lambda: solve_qbp(problem, iterations=40, initial=initial, seed=0)
        result = benchmark.pedantic(run, rounds=1)
        assignment = result.best_feasible_assignment or initial
        final = min(evaluator.cost(assignment), start)
    elif method == "gfm":
        result = benchmark.pedantic(gfm_partition, args=(problem, initial), rounds=1)
        assignment, final = result.assignment, result.cost
    elif method == "gkl":
        result = benchmark.pedantic(gkl_partition, args=(problem, initial), rounds=1)
        assignment, final = result.assignment, result.cost
    elif method == "annealing":
        run = lambda: annealing_partition(
            problem, initial, temperature_steps=25, seed=0
        )
        result = benchmark.pedantic(run, rounds=1)
        assignment, final = result.assignment, result.cost
    else:
        run = lambda: spectral_partition(problem, seed=0)
        result = benchmark.pedantic(run, rounds=1)
        # Spectral ignores the shared start (it is constructive).
        assignment, final = result.assignment, result.cost

    print(f"\n[{method}] start={start:.0f} final={final:.0f}")
    report = check_feasibility(problem, assignment)
    assert not report.capacity_violations
