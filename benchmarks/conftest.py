"""Shared fixtures for the benchmark suite.

Benchmarks default to quarter-scale workloads so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_BENCH_SCALE=1.0`` for the full Table I sizes (the setting used
for the numbers recorded in EXPERIMENTS.md) and
``REPRO_BENCH_ITERATIONS`` to override the QBP iteration count.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.harness import shared_initial_solution
from repro.eval.paper_data import QBP_ITERATIONS
from repro.eval.workloads import build_workload, workload_names

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", str(QBP_ITERATIONS)))
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_iterations() -> int:
    return BENCH_ITERATIONS


@pytest.fixture(scope="session")
def workloads():
    """All seven circuit twins at the benchmark scale."""
    return {name: build_workload(name, scale=BENCH_SCALE) for name in workload_names()}


@pytest.fixture(scope="session")
def initials(workloads):
    """One shared feasible start per circuit (the paper's protocol)."""
    return {
        name: shared_initial_solution(workload, seed=BENCH_SEED)
        for name, workload in workloads.items()
    }
