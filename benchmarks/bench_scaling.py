#!/usr/bin/env python
"""Scaling benchmark: batched vs scalar move-evaluation kernels.

Sweeps synthetic clustered workloads over a grid of problem sizes
(``N`` components x ``K`` partitions) and, for every cell, replays the
same deterministic move sequence through both kernels of
:class:`repro.engine.delta.DeltaCache`:

* **batched** - :meth:`scan_move_deltas` is one
  :meth:`all_move_deltas` call (whole-array sparse products), the
  default production path,
* **scalar** - the per-component :meth:`move_deltas` reference loop.

Each replay step performs a full candidate scan, records the selected
candidate (flat argmin - the deterministic tie-break shared with
:meth:`DeltaCache.best_move`), then applies the next scripted move.
The two kernels must agree on every selection, on the final maintained
state, and on every ``delta.*`` stats counter; divergence aborts the
benchmark.

The output is a ``bench-scaling-v1`` JSON document (canonically named
``BENCH_scaling.json``) that ``scripts/check_bench.py`` can gate
against the committed ``benchmarks/baselines/scaling.json``: counters
exactly, wall times within a wide ratio, and the batched/scalar
speedup against each cell's ``min_speedup`` floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py --out BENCH_scaling.json
    python scripts/check_bench.py BENCH_scaling.json \\
        --baseline benchmarks/baselines/scaling.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.engine.delta import KERNEL_MODES, DeltaCache
from repro.core.problem import PartitioningProblem
from repro.eval.workloads import cluster_reference
from repro.netlist.generate import ClusteredCircuitSpec, generate_clustered_circuit
from repro.timing.constraints import synthesize_feasible_constraints
from repro.topology.grid import grid_topology

BENCH_SCALING_FORMAT = "bench-scaling-v1"
"""Schema tag; scripts/check_bench.py dispatches on it."""

DEFAULT_SIZES = (64, 256, 1024)
DEFAULT_PARTITIONS = (2, 8)
DEFAULT_MOVES = 32
SEED = 29
WIRE_FACTOR = 3
CAPACITY_SLACK = 0.2


def build_cell_problem(n: int, k: int, seed: int) -> Tuple[PartitioningProblem, object]:
    """One synthetic workload cell: clustered circuit, K-slot grid, timing."""
    spec = ClusteredCircuitSpec(
        name=f"scaling-n{n}-k{k}",
        num_components=n,
        num_wires=WIRE_FACTOR * n,
        intra_cluster_probability=0.75,
        size_range=(1.0, 100.0),
    )
    circuit = generate_clustered_circuit(spec, seed)
    rows = 1 if k <= 4 else 2
    capacity = circuit.total_size() * (1.0 + CAPACITY_SLACK) / k
    capacity = max(capacity, float(circuit.sizes().max()) * (1.0 + CAPACITY_SLACK))
    topology = grid_topology(rows, k // rows, capacity=capacity, name=f"grid-{k}")
    reference = cluster_reference(circuit, topology)
    timing = synthesize_feasible_constraints(
        circuit,
        topology.delay_matrix,
        reference.part,
        count=max(1, n // 4),
        seed=seed + 1,
    )
    problem = PartitioningProblem(
        circuit, topology, timing=timing, name=spec.name
    )
    return problem, reference


def move_sequence(problem, initial, moves: int, rng) -> List[Tuple[int, int]]:
    """A deterministic, capacity-respecting random move sequence."""
    cache = DeltaCache(problem, initial)
    sequence: List[Tuple[int, int]] = []
    while len(sequence) < moves:
        j = int(rng.integers(0, problem.num_components))
        i = int(rng.integers(0, problem.num_partitions))
        if i == int(cache.part[j]) or not cache.capacity.move_fits(j, i):
            continue
        cache.apply_move(j, i)
        sequence.append((j, i))
    return sequence


def run_kernel(problem, initial, moves, kernel: str):
    """Replay ``moves`` with full candidate scans through one kernel.

    Returns ``(elapsed_seconds, picks, scan_sums, cache)``: the argmin
    candidate chain, a per-scan checksum, and the finished cache for
    state comparison.
    """
    cache = DeltaCache(problem, initial, kernel=kernel)
    picks: List[int] = []
    sums: List[float] = []
    t0 = time.perf_counter()
    for j, i in moves:
        scan = cache.scan_move_deltas()
        picks.append(int(np.argmin(scan)))
        sums.append(float(scan.sum()))
        cache.apply_move(j, i)
    elapsed = time.perf_counter() - t0
    return elapsed, picks, sums, cache


def assert_equivalent(results: Dict[str, tuple], cell: str) -> None:
    """Cross-kernel equivalence: selections, state, and counters agree."""
    (_, picks_b, sums_b, cache_b) = results["batched"]
    (_, picks_s, sums_s, cache_s) = results["scalar"]
    if picks_b != picks_s:
        raise AssertionError(f"{cell}: kernels selected different candidates")
    if not np.allclose(sums_b, sums_s, rtol=0, atol=1e-8):
        raise AssertionError(f"{cell}: scan checksums diverged")
    if not np.allclose(cache_b.delta, cache_s.delta, rtol=0, atol=1e-8):
        raise AssertionError(f"{cell}: final delta matrices diverged")
    if not np.array_equal(cache_b.timing_block, cache_s.timing_block):
        raise AssertionError(f"{cell}: timing blocks diverged")
    if not np.array_equal(cache_b.part, cache_s.part):
        raise AssertionError(f"{cell}: assignments diverged")
    if cache_b.stats.as_dict() != cache_s.stats.as_dict():
        raise AssertionError(f"{cell}: delta.* counters diverged")


def run_cell(n: int, k: int, moves: int) -> Dict[str, object]:
    """Benchmark one ``(N, K)`` cell through every kernel."""
    problem, reference = build_cell_problem(n, k, seed=SEED)
    sequence = move_sequence(
        problem, reference, moves, np.random.default_rng(SEED + n + k)
    )
    results = {
        kernel: run_kernel(problem, reference, sequence, kernel)
        for kernel in KERNEL_MODES
    }
    assert_equivalent(results, f"n={n} k={k}")
    kernels = {
        kernel: {
            "seconds": elapsed,
            "counters": {
                f"delta.{name}": float(value)
                for name, value in cache.stats.as_dict().items()
            },
        }
        for kernel, (elapsed, _, _, cache) in results.items()
    }
    batched_s = kernels["batched"]["seconds"]
    scalar_s = kernels["scalar"]["seconds"]
    return {
        "n": n,
        "k": k,
        "moves": len(sequence),
        "kernels": kernels,
        "speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
    }


def run_sweep(
    sizes: Sequence[int], partitions: Sequence[int], moves: int
) -> Dict[str, object]:
    cells = []
    for n in sizes:
        for k in partitions:
            cell = run_cell(n, k, moves)
            cells.append(cell)
            print(
                f"# n={n} k={k}: batched "
                f"{cell['kernels']['batched']['seconds']:.4f}s, scalar "
                f"{cell['kernels']['scalar']['seconds']:.4f}s "
                f"({cell['speedup']:.1f}x)"
            )
    return {
        "format": BENCH_SCALING_FORMAT,
        "sizes": list(sizes),
        "partitions": list(partitions),
        "moves": moves,
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched vs scalar kernel scaling sweep."
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        metavar="N", help=f"component counts (default {list(DEFAULT_SIZES)})",
    )
    parser.add_argument(
        "--partitions", type=int, nargs="+", default=list(DEFAULT_PARTITIONS),
        metavar="K", help=f"partition counts (default {list(DEFAULT_PARTITIONS)})",
    )
    parser.add_argument(
        "--moves", type=int, default=DEFAULT_MOVES, metavar="M",
        help=f"scan+apply steps per cell (default {DEFAULT_MOVES})",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="result path (default: print to stdout); the canonical "
        "artifact name is BENCH_scaling.json",
    )
    args = parser.parse_args(argv)
    if args.moves < 1:
        parser.error("--moves must be >= 1")
    for value in args.sizes + args.partitions:
        if value < 2:
            parser.error("--sizes and --partitions values must be >= 2")

    payload = run_sweep(args.sizes, args.partitions, args.moves)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
