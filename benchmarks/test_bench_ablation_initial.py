"""Ablation: robustness to the initial solution.

The paper: "In our separate experiments we discovered that QBP
maintained the same kind of good results from any arbitrary initial
solution" (while GFM and GKL *need* a feasible start).  This ablation
runs QBP from the shared bootstrap start and from fresh randomized
greedy starts and compares outcomes.
"""

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.solvers.burkard import solve_qbp
from repro.solvers.greedy import greedy_feasible_assignment

CIRCUIT = "cktb"
STARTS = ["bootstrap", "greedy-1", "greedy-2"]


@pytest.mark.parametrize("start", STARTS)
def test_bench_initial_robustness(benchmark, start, workloads, initials):
    workload = workloads[CIRCUIT]
    problem = workload.problem_no_timing
    if start == "bootstrap":
        initial = initials[CIRCUIT]
    else:
        seed = int(start.split("-")[1])
        initial = greedy_feasible_assignment(problem, seed=seed)
    evaluator = ObjectiveEvaluator(problem)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={"iterations": 40, "initial": initial, "seed": 0},
        rounds=1,
    )
    final = min(result.best_feasible_cost, evaluator.cost(initial))
    print(f"\n[start={start}] initial={evaluator.cost(initial):.0f} final={final:.0f}")
    assert result.best_feasible_assignment is not None
