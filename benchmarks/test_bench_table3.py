"""Benchmark: regenerate Table III (with timing constraints).

Same protocol as Table II but on the timing-constrained problems; every
reported solution is audited violation-free, reproducing the paper's
guarantee that "the final solution will be violation-free".
"""

import pytest

from repro.baselines.gfm import gfm_partition
from repro.baselines.gkl import gkl_partition
from repro.core.constraints import check_feasibility
from repro.core.objective import ObjectiveEvaluator
from repro.eval.workloads import workload_names
from repro.solvers.burkard import solve_qbp

CIRCUITS = workload_names()


@pytest.mark.parametrize("name", CIRCUITS)
def test_bench_table3_qbp(benchmark, name, workloads, initials, bench_iterations):
    workload = workloads[name]
    problem = workload.problem
    initial = initials[name]
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={"iterations": bench_iterations, "initial": initial, "seed": 0},
        rounds=1,
    )
    assignment = result.best_feasible_assignment or initial
    final = min(evaluator.cost(assignment), start)
    print(f"\n[Table III / {name}] QBP: start={start:.0f} final={final:.0f} "
          f"(-{100 * (start - final) / start:.1f}%)")
    assert check_feasibility(problem, assignment).feasible


@pytest.mark.parametrize("name", CIRCUITS)
def test_bench_table3_gfm(benchmark, name, workloads, initials):
    workload = workloads[name]
    problem = workload.problem
    initial = initials[name]

    result = benchmark.pedantic(gfm_partition, args=(problem, initial), rounds=1)
    print(f"\n[Table III / {name}] GFM: start={result.initial_cost:.0f} "
          f"final={result.cost:.0f} (-{result.improvement_percent:.1f}%)")
    assert check_feasibility(problem, result.assignment).feasible


@pytest.mark.parametrize("name", CIRCUITS)
def test_bench_table3_gkl(benchmark, name, workloads, initials):
    workload = workloads[name]
    problem = workload.problem
    initial = initials[name]

    result = benchmark.pedantic(gkl_partition, args=(problem, initial), rounds=1)
    print(f"\n[Table III / {name}] GKL: start={result.initial_cost:.0f} "
          f"final={result.cost:.0f} (-{result.improvement_percent:.1f}%)")
    assert check_feasibility(problem, result.assignment).feasible
