"""Overhead guard: disabled telemetry must not slow the solver down.

The observability layer promises "zero overhead when disabled": the
ambient default is the shared ``DISABLED`` bundle, every instrument
lookup returns a null singleton, and hot loops guard event construction
behind ``tel.enabled``.  This benchmark pins that promise by timing the
same QBP run three ways:

* ``off``   - no telemetry argument (the disabled fast path),
* ``ambient`` - an enabled bundle installed ambiently,
* ``explicit`` - an enabled bundle passed via ``telemetry=``.

The profiling layer makes the same promise one level up: a profiler
that is *not armed* (no ``--profile``) must cost nothing - the disabled
bundle never touches ``Telemetry.profiler``, and the enabled span path
only pays one attribute read.  ``test_profiler_disabled_overhead`` pins
the ``off`` median against an enabled-but-unprofiled run under the same
bound as the main guard.

Run with ``pytest benchmarks/test_bench_obs_overhead.py --benchmark-only``
and compare the three medians; the ``off`` variant must match the seed's
un-instrumented timings, and the regression assertion below keeps the
disabled path honest even in a plain (non ``--benchmark-only``) run.
"""

import time

import pytest

from repro.eval.harness import shared_initial_solution
from repro.eval.workloads import build_workload
from repro.obs.telemetry import Telemetry, use_telemetry
from repro.solvers.burkard import solve_qbp

CIRCUIT = "cktb"
ITERATIONS = 10
BENCH_SEED = 0


@pytest.fixture(scope="module")
def workload():
    # Small fixed scale: this benchmark compares the *same* run with
    # telemetry off/ambient/explicit, so absolute size only needs to be
    # big enough that solver work dominates fixture noise.
    return build_workload(CIRCUIT, scale=0.15)


@pytest.fixture(scope="module")
def initial(workload):
    return shared_initial_solution(workload, seed=BENCH_SEED)


def _run_off(problem, initial):
    return solve_qbp(problem, iterations=ITERATIONS, initial=initial, seed=0)


def _run_ambient(problem, initial):
    with use_telemetry(Telemetry.enabled_default()):
        return solve_qbp(problem, iterations=ITERATIONS, initial=initial, seed=0)


def _run_explicit(problem, initial):
    return solve_qbp(
        problem, iterations=ITERATIONS, initial=initial, seed=0,
        telemetry=Telemetry.enabled_default(),
    )


VARIANTS = {"off": _run_off, "ambient": _run_ambient, "explicit": _run_explicit}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_bench_obs_overhead(benchmark, variant, workload, initial):
    problem = workload.problem_no_timing

    result = benchmark.pedantic(
        VARIANTS[variant], args=(problem, initial), rounds=3, warmup_rounds=1
    )
    assert result.assignment is not None


def test_disabled_path_overhead_is_small(workload, initial):
    """Median disabled run within 15% of the enabled run (or faster).

    Telemetry cost is a handful of counter bumps and dataclass
    constructions per iteration, dwarfed by the linear-assignment inner
    solves - so if *disabling* it ever costs more than a sliver, the
    null-object fast path has regressed.
    """
    problem = workload.problem_no_timing

    def median_time(fn, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(problem, initial)
            times.append(time.perf_counter() - start)
        return sorted(times)[rounds // 2]

    _run_off(problem, initial)  # warm caches before timing
    off = median_time(_run_off)
    explicit = median_time(_run_explicit)
    assert off <= explicit * 1.15 + 0.05


def test_profiler_disabled_overhead(workload, initial):
    """An unarmed profiler adds nothing to the disabled fast path.

    The enabled comparison run carries a telemetry bundle whose
    ``profiler`` stays ``None`` (the default - profiling is opt-in via
    ``--profile``), so its spans skip the MemorySpan wrapper; the
    disabled run must stay within the same 15% envelope as the main
    overhead guard.
    """
    problem = workload.problem_no_timing

    def run_enabled_unprofiled(problem, initial):
        tel = Telemetry.enabled_default()
        assert tel.profiler is None  # profiling stays opt-in
        return solve_qbp(
            problem, iterations=ITERATIONS, initial=initial, seed=0, telemetry=tel
        )

    def median_time(fn, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(problem, initial)
            times.append(time.perf_counter() - start)
        return sorted(times)[rounds // 2]

    _run_off(problem, initial)  # warm caches before timing
    off = median_time(_run_off)
    unprofiled = median_time(run_enabled_unprofiled)
    assert off <= unprofiled * 1.15 + 0.05
