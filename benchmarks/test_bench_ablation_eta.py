"""Ablation: the STEP 3 eta variants (see solve_qbp's ``eta_mode``).

``burkard`` is the paper's pseudocode verbatim (column sums only -
faithful for symmetric ``A``); ``diagonal`` adds candidate linear
costs; ``symmetric`` (the library default) sums both halves of
``Q_hat``.  The ablation quantifies what each buys on a one-directional
wire representation.
"""

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.solvers.burkard import ETA_MODES, solve_qbp

CIRCUIT = "cktb"


@pytest.mark.parametrize("eta_mode", ETA_MODES)
def test_bench_eta_mode(benchmark, eta_mode, workloads, initials):
    workload = workloads[CIRCUIT]
    problem = workload.problem_no_timing
    initial = initials[CIRCUIT]
    evaluator = ObjectiveEvaluator(problem)
    start = evaluator.cost(initial)

    result = benchmark.pedantic(
        solve_qbp,
        args=(problem,),
        kwargs={
            "iterations": 40,
            "initial": initial,
            "seed": 0,
            "eta_mode": eta_mode,
        },
        rounds=1,
    )
    final = min(result.best_feasible_cost, start)
    print(f"\n[eta={eta_mode}] start={start:.0f} final={final:.0f} "
          f"(-{100 * (start - final) / start:.1f}%)")
    assert final <= start
