"""Benchmark: regenerate Table I (circuit descriptions).

Measures workload construction (circuit synthesis + topology + timing
budgets) and verifies that the generated statistics match the published
Table I (scaled by REPRO_BENCH_SCALE).
"""

import pytest

from repro.eval.paper_data import PAPER_TABLE1
from repro.eval.tables import render_table1
from repro.eval.workloads import build_workload, workload_names
from repro.netlist.stats import circuit_stats


@pytest.mark.parametrize("name", workload_names())
def test_bench_build_workload(benchmark, name, bench_scale):
    """Time the full workload build for one circuit."""
    workload = benchmark.pedantic(
        build_workload, args=(name,), kwargs={"scale": bench_scale}, rounds=1
    )
    paper = PAPER_TABLE1[name]
    assert workload.circuit.num_components == max(
        32, round(paper.num_components * bench_scale)
    )
    assert workload.circuit.num_wires == max(
        workload.circuit.num_components, round(paper.num_wires * bench_scale)
    )


def test_bench_render_table1(benchmark, workloads):
    """Render the Table I reproduction (printed with -s)."""
    rows = [(circuit_stats(w.circuit), w.timing.num_pairs) for w in workloads.values()]
    text = benchmark(render_table1, rows)
    print("\n" + text)
    for name in workload_names():
        assert name in text
