"""Ablation: sparse on-demand eta vs materialising dense Q (Section 4.3).

The paper's speedup claim: with few partitions and a sparse ``A``, the
STEP 3 vector can be computed from the sparse representation in
O(nnz(A) * M) instead of the O(M^2 N^2) dense product - "we never
explicitly generate the Q_hat matrix".  This ablation times one eta
evaluation both ways on a mid-sized circuit and asserts they agree.
"""

import numpy as np
import pytest

from repro.core.embedding import embed_timing
from repro.core.objective import ObjectiveEvaluator
from repro.core.qmatrix import build_q_dense
from repro.solvers.burkard import _IterationState, resolve_penalty

CIRCUIT = "cktb"


@pytest.fixture(scope="module")
def setting(request):
    workloads = request.getfixturevalue("workloads")
    initials = request.getfixturevalue("initials")
    workload = workloads[CIRCUIT]
    problem = workload.problem
    evaluator = ObjectiveEvaluator(problem)
    penalty = resolve_penalty(problem, "paper")
    state = _IterationState(problem, evaluator, penalty, "burkard")
    part = initials[CIRCUIT].part
    return problem, state, part, penalty


def test_bench_eta_sparse(benchmark, setting):
    """The production path: eta from sparse A + constraint list."""
    problem, state, part, _ = setting
    eta = benchmark(state.eta, part)
    assert eta.shape == (problem.num_components, problem.num_partitions)


def test_bench_eta_dense(benchmark, setting):
    """The naive path: materialise Q_hat and multiply by u."""
    problem, state, part, penalty = setting
    n, m = problem.num_components, problem.num_partitions

    def dense_eta():
        q = build_q_dense(problem)
        q_hat = embed_timing(q, problem, penalty=penalty)
        u = np.zeros(m * n)
        u[part + np.arange(n) * m] = 1.0
        return (u @ q_hat).reshape(n, m)

    eta_dense = benchmark.pedantic(dense_eta, rounds=1)
    eta_sparse = state.eta(part)
    # Same vector (the dense product IS the definition of eta).
    assert np.allclose(eta_dense, eta_sparse)
