"""Benchmark: the Figure 1 / Section 3.3 worked example.

The paper's only figure accompanies its worked 3-component example; the
reproduction here benchmarks constructing the 12x12 ``Q_hat`` exactly
as printed, plus exactly solving the embedded problem, and asserts the
published matrix structure.
"""

import numpy as np
import pytest

from repro.core.embedding import embed_timing
from repro.core.problem import PartitioningProblem
from repro.core.qmatrix import build_q_dense
from repro.netlist.circuit import Circuit
from repro.solvers.exact import solve_exact
from repro.timing.constraints import TimingConstraints
from repro.topology.grid import grid_topology


def paper_instance() -> PartitioningProblem:
    circuit = Circuit("figure1")
    for name in "abc":
        circuit.add_component(name, size=1.0)
    circuit.add_undirected_wire("a", "b", 5.0)
    circuit.add_undirected_wire("b", "c", 2.0)
    topology = grid_topology(2, 2, capacity=1.0)
    timing = TimingConstraints(3)
    timing.add(0, 1, 1.0, symmetric=True)
    timing.add(1, 2, 1.0, symmetric=True)
    return PartitioningProblem(circuit, topology, timing=timing)


def build_qhat():
    problem = paper_instance()
    q = build_q_dense(problem)
    return embed_timing(q, problem, penalty=50.0)


def test_bench_figure1_qhat_construction(benchmark):
    """Time Q -> Q_hat construction; check the printed structure."""
    q_hat = benchmark(build_qhat)
    assert q_hat.shape == (12, 12)
    # Row (a,2) as printed: [-, -, -, -, 5, -, 50, 5, -, -, -, -].
    assert np.array_equal(
        q_hat[1], np.array([0, 0, 0, 0, 5, 0, 50, 5, 0, 0, 0, 0], dtype=float)
    )
    # 8 penalty entries per wired block pair, 4 block pairs.
    assert int((q_hat == 50.0).sum()) == 16


def test_bench_figure1_exact_solve(benchmark):
    """Time the exact solve of the example; optimum is 14."""
    problem = paper_instance()
    result = benchmark(lambda: solve_exact(problem))
    assert result.proven_optimal
    assert result.cost == pytest.approx(14.0)
