#!/usr/bin/env python
"""Post-run audit: which circuits' shared start came from the fallback?

The harness uses the paper's zero-B bootstrap for the shared initial
solution and falls back to the workload's hidden reference assignment
when the bootstrap cannot reach feasibility.  This script rebuilds each
workload, compares the run's recorded start cost against both candidate
starts, and reports which path produced it — information EXPERIMENTS.md
discloses per circuit.

Usage: python scripts/audit_run.py [full_results.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.objective import ObjectiveEvaluator
from repro.eval.workloads import build_workload


def main() -> int:
    results_path = Path(sys.argv[1] if len(sys.argv) > 1 else "full_results.json")
    payload = json.loads(results_path.read_text())
    rows = {row["name"]: row for row in payload["table3"]}

    print("circuit | run start | reference cost | origin")
    print("--------+-----------+----------------+-------")
    for name, row in rows.items():
        workload = build_workload(name)
        evaluator = ObjectiveEvaluator(workload.problem)
        ref_cost = evaluator.cost(workload.reference)
        start = row["start_cost"]
        origin = "reference fallback" if abs(start - ref_cost) < 1e-6 else "bootstrap"
        print(f"{name:7s} | {start:9.0f} | {ref_cost:14.0f} | {origin}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
