#!/usr/bin/env python
"""Post-run audit: which circuits' shared start came from the fallback?

The harness uses the paper's zero-B bootstrap for the shared initial
solution and falls back to the workload's hidden reference assignment
when the bootstrap cannot reach feasibility.  This script rebuilds each
workload, compares the run's recorded start cost against both candidate
starts, and reports which path produced it — information EXPERIMENTS.md
discloses per circuit.

Usage: python scripts/audit_run.py [full_results.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.objective import ObjectiveEvaluator
from repro.eval.workloads import build_workload


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results_path = Path(argv[0] if argv else "full_results.json")
    try:
        payload = json.loads(results_path.read_text())
    except OSError as exc:
        print(f"audit_run: cannot read {results_path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"audit_run: {results_path} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    table = payload.get("table3") if isinstance(payload, dict) else None
    if table is None:
        available = sorted(payload) if isinstance(payload, dict) else []
        print(
            f"audit_run: {results_path} has no 'table3' section "
            f"(available keys: {', '.join(available) or 'none'}); "
            "this audit needs the Table III rows written by the full "
            "evaluation (python -m repro.eval.run --table 3 ...)",
            file=sys.stderr,
        )
        return 2
    rows = {row["name"]: row for row in table}

    print("circuit | run start | reference cost | origin")
    print("--------+-----------+----------------+-------")
    for name, row in rows.items():
        workload = build_workload(name)
        evaluator = ObjectiveEvaluator(workload.problem)
        ref_cost = evaluator.cost(workload.reference)
        start = row["start_cost"]
        origin = "reference fallback" if abs(start - ref_cost) < 1e-6 else "bootstrap"
        print(f"{name:7s} | {start:9.0f} | {ref_cost:14.0f} | {origin}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
