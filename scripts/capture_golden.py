#!/usr/bin/env python
"""Capture golden solver outputs for the engine-refactor equivalence tests.

Runs every solver entry point (``solve_qbp``, ``solve_qbp_multistart``,
GFM, GKL, annealing) on small fixed-seed workloads and records the exact
assignment vectors and costs to
``tests/integration/data/golden_equivalence.json``.

``tests/integration/test_golden_equivalence.py`` replays the same runs
and asserts bit-identical results, so any refactor of the solver/engine
stack that changes numerical behaviour fails loudly.  Re-run this script
(and commit the diff) only when an output change is intentional.

Usage::

    PYTHONPATH=src python scripts/capture_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.baselines.annealing import annealing_partition
from repro.baselines.gfm import gfm_partition
from repro.baselines.gkl import gkl_partition
from repro.eval.harness import shared_initial_solution
from repro.eval.workloads import build_workload
from repro.solvers.burkard import solve_qbp, solve_qbp_multistart

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "integration"
    / "data"
    / "golden_equivalence.json"
)

GOLDEN_FORMAT = "golden-equivalence-v1"

SCALE = 0.1
QBP_ITERATIONS = 12
MULTISTART_RESTARTS = 3
MULTISTART_ITERATIONS = 8
INITIAL_SEED = 1


def capture_case(name: str, with_timing: bool) -> dict:
    """All solver outputs for one (circuit, timing) case."""
    workload = build_workload(name, scale=SCALE)
    problem = workload.problem if with_timing else workload.problem_no_timing
    initial = shared_initial_solution(workload, seed=INITIAL_SEED)

    qbp = solve_qbp(problem, iterations=QBP_ITERATIONS, initial=initial, seed=3)
    multi = solve_qbp_multistart(
        problem,
        restarts=MULTISTART_RESTARTS,
        iterations=MULTISTART_ITERATIONS,
        seed=5,
    )
    gfm = gfm_partition(problem, initial)
    gkl = gkl_partition(problem, initial)
    anneal = annealing_partition(problem, initial, temperature_steps=8, seed=7)

    return {
        "initial": initial.part.tolist(),
        "qbp": {
            "part": qbp.assignment.part.tolist(),
            "cost": qbp.cost,
            "penalized_cost": qbp.penalized_cost,
            "best_feasible_cost": (
                None
                if qbp.best_feasible_assignment is None
                else qbp.best_feasible_cost
            ),
        },
        "multistart": {
            "part": multi.assignment.part.tolist(),
            "cost": multi.cost,
            "penalized_cost": multi.penalized_cost,
        },
        "gfm": {"part": gfm.assignment.part.tolist(), "cost": gfm.cost},
        "gkl": {"part": gkl.assignment.part.tolist(), "cost": gkl.cost},
        "annealing": {"part": anneal.assignment.part.tolist(), "cost": anneal.cost},
    }


def main() -> int:
    payload = {
        "format": GOLDEN_FORMAT,
        "params": {
            "scale": SCALE,
            "qbp_iterations": QBP_ITERATIONS,
            "multistart_restarts": MULTISTART_RESTARTS,
            "multistart_iterations": MULTISTART_ITERATIONS,
            "initial_seed": INITIAL_SEED,
        },
        "cases": {
            "ckta-timing": capture_case("ckta", with_timing=True),
            "ckta-no-timing": capture_case("ckta", with_timing=False),
            "cktb-timing": capture_case("cktb", with_timing=True),
        },
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
