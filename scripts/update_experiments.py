#!/usr/bin/env python
"""Insert measured Table II/III results into EXPERIMENTS.md.

Reads the JSON written by ``python -m repro.eval.run --table all --json
full_results.json`` and replaces the block between the RESULTS markers
in EXPERIMENTS.md with rendered markdown tables plus the paper-vs-
measured shape analysis.

Usage: python scripts/update_experiments.py [results.json] [EXPERIMENTS.md]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.eval.paper_data import PAPER_TABLE2, PAPER_TABLE3

BEGIN = "<!-- RESULTS:BEGIN -->"
END = "<!-- RESULTS:END -->"


def render_measured_table(rows: list[dict], paper: dict, title: str) -> str:
    lines = [
        f"## {title}",
        "",
        "| circuit | start | QBP final | (-%) | cpu(s) | GFM final | (-%) | cpu(s) | GKL final | (-%) | cpu(s) | feasible |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            "| {name} | {start:.0f} | {qc:.0f} | {qi:.1f} | {qt:.1f} "
            "| {gc:.0f} | {gi:.1f} | {gt:.1f} "
            "| {kc:.0f} | {ki:.1f} | {kt:.1f} | {feas} |".format(
                name=row["name"],
                start=row["start_cost"],
                qc=row["qbp_cost"],
                qi=row["qbp_improvement"],
                qt=row["qbp_cpu"],
                gc=row["gfm_cost"],
                gi=row["gfm_improvement"],
                gt=row["gfm_cpu"],
                kc=row["gkl_cost"],
                ki=row["gkl_improvement"],
                kt=row["gkl_cpu"],
                feas="yes" if row["all_feasible"] else "NO",
            )
        )
        p = paper[row["name"]]
        lines.append(
            "| *(paper)* | *{start}* | *{qc}* | *{qi}* | *{qt}* "
            "| *{gc}* | *{gi}* | *{gt}* | *{kc}* | *{ki}* | *{kt}* | *yes* |".format(
                start=p.start,
                qc=p.qbp.final, qi=p.qbp.improvement_percent, qt=p.qbp.cpu_seconds,
                gc=p.gfm.final, gi=p.gfm.improvement_percent, gt=p.gfm.cpu_seconds,
                kc=p.gkl.final, ki=p.gkl.improvement_percent, kt=p.gkl.cpu_seconds,
            )
        )
    return "\n".join(lines)


def shape_analysis(rows2: list[dict], rows3: list[dict]) -> str:
    def mean(rows, key):
        return sum(r[key] for r in rows) / len(rows)

    def wins(rows):
        counts = {"qbp": 0, "gfm": 0, "gkl": 0}
        for r in rows:
            best = min(
                ("qbp", r["qbp_cost"]), ("gfm", r["gfm_cost"]), ("gkl", r["gkl_cost"]),
                key=lambda kv: kv[1],
            )[0]
            counts[best] += 1
        return counts

    lines = ["## Shape analysis (measured)", ""]
    for label, rows in (("Table II", rows2), ("Table III", rows3)):
        w = wins(rows)
        lines.append(
            f"* **{label}** mean improvements: QBP {mean(rows, 'qbp_improvement'):.1f}%, "
            f"GFM {mean(rows, 'gfm_improvement'):.1f}%, "
            f"GKL {mean(rows, 'gkl_improvement'):.1f}%; "
            f"best-quality wins: QBP {w['qbp']}, GFM {w['gfm']}, GKL {w['gkl']}."
        )
        lines.append(
            f"  Mean CPU: QBP {mean(rows, 'qbp_cpu'):.1f}s, "
            f"GFM {mean(rows, 'gfm_cpu'):.1f}s, GKL {mean(rows, 'gkl_cpu'):.1f}s."
        )
    drop_qbp = (
        sum(r["qbp_improvement"] for r in rows2) - sum(r["qbp_improvement"] for r in rows3)
    ) / len(rows2)
    drop_gfm = (
        sum(r["gfm_improvement"] for r in rows2) - sum(r["gfm_improvement"] for r in rows3)
    ) / len(rows2)
    drop_gkl = (
        sum(r["gkl_improvement"] for r in rows2) - sum(r["gkl_improvement"] for r in rows3)
    ) / len(rows2)
    lines.append(
        f"* Improvement drop under timing (II → III): QBP {drop_qbp:.1f} points, "
        f"GFM {drop_gfm:.1f}, GKL {drop_gkl:.1f}."
    )
    feasible = all(r["all_feasible"] for r in rows2 + rows3)
    lines.append(
        f"* Every reported solution violation-free: {'yes' if feasible else 'NO'}."
    )
    return "\n".join(lines)


def main() -> int:
    results_path = Path(sys.argv[1] if len(sys.argv) > 1 else "full_results.json")
    doc_path = Path(sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md")
    payload = json.loads(results_path.read_text())
    rows2, rows3 = payload["table2"], payload["table3"]

    block = "\n\n".join(
        [
            BEGIN,
            render_measured_table(
                rows2, PAPER_TABLE2, "Table II — without timing constraints (measured vs paper)"
            ),
            render_measured_table(
                rows3, PAPER_TABLE3, "Table III — with timing constraints (measured vs paper)"
            ),
            shape_analysis(rows2, rows3),
            END,
        ]
    )
    text = doc_path.read_text()
    before = text.split(BEGIN)[0]
    after = text.split(END)[1]
    doc_path.write_text(before + block + after)
    print(f"updated {doc_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
