#!/usr/bin/env python
"""Gate a run's metrics snapshot against a committed benchmark baseline.

Compares a ``metrics-snapshot-v1`` dump (written by ``--metrics-out``)
with a baseline JSON under ``benchmarks/baselines/`` using
:func:`repro.obs.metrics.diff_snapshots`, and fails on drift:

* **counters** (e.g. ``solver.iterations``) are deterministic for a
  fixed seed, so the default tolerance is **zero** - any delta means the
  algorithm's work content changed, which must be a conscious decision
  (re-baseline with ``--update``);
* **wall-time gauges** (names ending in ``_seconds``) vary with the
  machine, so they get a wide *relative* tolerance (default 10x either
  way) that still catches order-of-magnitude regressions such as an
  accidentally quadratic inner loop.

Counters that exist only in the current run (new instrumentation) are
reported but do not fail the gate; counters present in the baseline but
missing from the run do fail (something stopped being measured).

Instead of a static baseline, ``--ledger`` gates against the rolling
window of a ``run-ledger-v1`` history (see ``repro.obs.ledger``):
counters come from the latest recorded run, timing gauges from the
window median, so the gate tracks the fleet's recent reality instead of
one frozen machine.

Usage::

    python -m repro.eval.run --table 2 --scale 0.1 --circuits ckta cktb \\
        --iterations 20 --seed 0 --metrics-out current.json
    python scripts/check_bench.py current.json \\
        --baseline benchmarks/baselines/eval-small.json
    python scripts/check_bench.py current.json \\
        --ledger benchmarks/ledger.jsonl --window 10

Exit codes: 0 within tolerance, 1 drift detected, 2 unreadable input.
Needs ``src`` on ``PYTHONPATH`` (or the package installed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import METRICS_SNAPSHOT_FORMAT, diff_snapshots

DEFAULT_COUNTER_TOLERANCE = 0.0
DEFAULT_TIME_TOLERANCE = 10.0
TIME_GAUGE_SUFFIX = "_seconds"


def load_snapshot(path) -> Dict[str, Any]:
    """Read and sanity-check a ``metrics-snapshot-v1`` JSON file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != METRICS_SNAPSHOT_FORMAT:
        raise ValueError(
            f"{path}: expected format {METRICS_SNAPSHOT_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    return payload


def check_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> List[str]:
    """Compare two snapshots; returns a list of problems (empty = pass).

    ``counter_tolerance`` is the allowed *relative* counter drift
    (``|delta| / max(baseline, 1)``).  ``time_tolerance`` is the allowed
    ratio for ``*_seconds`` gauges in either direction (``10.0`` accepts
    anything between a tenth and ten times the baseline).  Non-time
    gauges and histograms are informational only: they record
    last-write state, not work content.
    """
    problems: List[str] = []
    drift = diff_snapshots(baseline, current)

    base_counters = baseline.get("counters", {})
    for name, delta in sorted(drift.get("counters", {}).items()):
        if name not in base_counters:
            continue  # new instrumentation: informational, not a failure
        reference = max(abs(float(base_counters[name])), 1.0)
        relative = abs(float(delta)) / reference
        if relative > counter_tolerance:
            problems.append(
                f"counter {name}: {base_counters[name]:g} -> "
                f"{current.get('counters', {}).get(name, 0):g} "
                f"(drift {relative:.1%} > {counter_tolerance:.1%})"
            )
    for name in sorted(base_counters):
        if name not in current.get("counters", {}):
            problems.append(f"counter {name}: present in baseline, missing from run")

    current_gauges = current.get("gauges", {})
    for name, reference in sorted(baseline.get("gauges", {}).items()):
        if not name.endswith(TIME_GAUGE_SUFFIX):
            continue
        if name not in current_gauges:
            problems.append(f"gauge {name}: present in baseline, missing from run")
            continue
        value = float(current_gauges[name])
        reference = float(reference)
        if reference <= 0.0 or value <= 0.0:
            continue  # degenerate timings carry no signal
        ratio = max(value / reference, reference / value)
        if ratio > time_tolerance:
            problems.append(
                f"gauge {name}: {reference:g}s -> {value:g}s "
                f"({ratio:.1f}x outside {time_tolerance:g}x tolerance)"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a metrics snapshot against a committed baseline."
    )
    parser.add_argument("current", help="metrics JSON written by --metrics-out")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed baseline snapshot (benchmarks/baselines/*.json)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="gate against the rolling window of a run-ledger-v1 history "
        "instead of a static baseline (see repro.obs.ledger)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="ledger window size (default: repro.obs.ledger.DEFAULT_WINDOW)",
    )
    parser.add_argument(
        "--counter-tolerance", type=float, default=DEFAULT_COUNTER_TOLERANCE,
        help="allowed relative counter drift (default 0: exact, counters "
        "are deterministic for a fixed seed)",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=DEFAULT_TIME_TOLERANCE,
        help="allowed ratio for *_seconds gauges in either direction "
        f"(default {DEFAULT_TIME_TOLERANCE:g}x: machines differ, "
        "order-of-magnitude regressions do not)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current snapshot and exit 0",
    )
    args = parser.parse_args(argv)
    if (args.baseline is None) == (args.ledger is None):
        parser.error("exactly one of --baseline or --ledger is required")
    if args.update and args.baseline is None:
        parser.error("--update needs --baseline (ledgers grow via --ledger runs)")

    try:
        current = load_snapshot(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"check_bench: unreadable current snapshot: {exc}", file=sys.stderr)
        return 2

    if args.update:
        Path(args.baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.baseline).write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"check_bench: baseline {args.baseline} updated")
        return 0

    if args.ledger is not None:
        from repro.obs.ledger import DEFAULT_WINDOW, read_ledger, window_baseline

        if not Path(args.ledger).exists():
            print(
                f"check_bench: ledger {args.ledger} does not exist; run a "
                "--ledger workload first or gate with --baseline",
                file=sys.stderr,
            )
            return 2
        records = read_ledger(args.ledger)
        baseline = window_baseline(
            records, window=args.window if args.window is not None else DEFAULT_WINDOW
        )
        if baseline is None:
            print(
                f"check_bench: ledger {args.ledger} holds no run-ledger-v1 "
                "records; run a --ledger workload first or gate with --baseline",
                file=sys.stderr,
            )
            return 2
        baseline_label = f"{args.ledger} (window of {len(records)} record(s))"
    else:
        try:
            baseline = load_snapshot(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"check_bench: unreadable baseline: {exc}", file=sys.stderr)
            return 2
        baseline_label = args.baseline

    problems = check_bench(
        current,
        baseline,
        counter_tolerance=args.counter_tolerance,
        time_tolerance=args.time_tolerance,
    )
    if problems:
        for problem in problems:
            print(f"check_bench: {problem}", file=sys.stderr)
        print(
            f"check_bench: {len(problems)} problem(s); if intentional, "
            f"re-baseline with --update",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench: {args.current} within tolerance of {baseline_label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
