#!/usr/bin/env python
"""Gate a run's metrics snapshot against a committed benchmark baseline.

Compares a ``metrics-snapshot-v1`` dump (written by ``--metrics-out``)
with a baseline JSON under ``benchmarks/baselines/`` using
:func:`repro.obs.metrics.diff_snapshots`, and fails on drift:

* **counters** (e.g. ``solver.iterations``) are deterministic for a
  fixed seed, so the default tolerance is **zero** - any delta means the
  algorithm's work content changed, which must be a conscious decision
  (re-baseline with ``--update``);
* **wall-time gauges** (names ending in ``_seconds``) vary with the
  machine, so they get a wide *relative* tolerance (default 10x either
  way) that still catches order-of-magnitude regressions such as an
  accidentally quadratic inner loop.

Counters that exist only in the current run (new instrumentation) are
reported but do not fail the gate; counters present in the baseline but
missing from the run do fail (something stopped being measured).

Instead of a static baseline, ``--ledger`` gates against the rolling
window of a ``run-ledger-v1`` history (see ``repro.obs.ledger``):
counters come from the latest recorded run, timing gauges from the
window median, so the gate tracks the fleet's recent reality instead of
one frozen machine.

``bench-scaling-v1`` documents (written by
``benchmarks/bench_scaling.py``) gate per ``(N, K)`` cell instead:
``delta.*`` counters exactly (deterministic move replay), per-kernel
wall times within the time tolerance, and the batched/scalar speedup
against the baseline cell's ``min_speedup`` floor - the batched kernel
must never be slower than its committed margin.  Every violation prints
one line naming the offending metric and both values.

Usage::

    python -m repro.eval.run --table 2 --scale 0.1 --circuits ckta cktb \\
        --iterations 20 --seed 0 --metrics-out current.json
    python scripts/check_bench.py current.json \\
        --baseline benchmarks/baselines/eval-small.json
    python scripts/check_bench.py current.json \\
        --ledger benchmarks/ledger.jsonl --window 10
    python scripts/check_bench.py BENCH_scaling.json \\
        --baseline benchmarks/baselines/scaling.json

Exit codes: 0 within tolerance, 1 drift detected, 2 unreadable input.
Needs ``src`` on ``PYTHONPATH`` (or the package installed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import METRICS_SNAPSHOT_FORMAT, diff_snapshots

DEFAULT_COUNTER_TOLERANCE = 0.0
DEFAULT_TIME_TOLERANCE = 10.0
TIME_GAUGE_SUFFIX = "_seconds"
# Kept in sync with benchmarks/bench_scaling.py (scripts/ cannot import
# benchmarks/): the per-cell kernel-comparison schema.
BENCH_SCALING_FORMAT = "bench-scaling-v1"
DEFAULT_MIN_SPEEDUP = 1.0
KNOWN_FORMATS = (METRICS_SNAPSHOT_FORMAT, BENCH_SCALING_FORMAT)


def load_snapshot(path) -> Dict[str, Any]:
    """Read and sanity-check a metrics-snapshot or bench-scaling JSON."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") not in KNOWN_FORMATS:
        raise ValueError(
            f"{path}: expected format in {KNOWN_FORMATS}, "
            f"got {payload.get('format')!r}"
        )
    return payload


def check_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> List[str]:
    """Compare two snapshots; returns a list of problems (empty = pass).

    ``counter_tolerance`` is the allowed *relative* counter drift
    (``|delta| / max(baseline, 1)``).  ``time_tolerance`` is the allowed
    ratio for ``*_seconds`` gauges in either direction (``10.0`` accepts
    anything between a tenth and ten times the baseline).  Non-time
    gauges and histograms are informational only: they record
    last-write state, not work content.
    """
    problems: List[str] = []
    drift = diff_snapshots(baseline, current)

    base_counters = baseline.get("counters", {})
    for name, delta in sorted(drift.get("counters", {}).items()):
        if name not in base_counters:
            continue  # new instrumentation: informational, not a failure
        reference = max(abs(float(base_counters[name])), 1.0)
        relative = abs(float(delta)) / reference
        if relative > counter_tolerance:
            problems.append(
                f"counter {name}: {base_counters[name]:g} -> "
                f"{current.get('counters', {}).get(name, 0):g} "
                f"(drift {relative:.1%} > {counter_tolerance:.1%})"
            )
    for name in sorted(base_counters):
        if name not in current.get("counters", {}):
            problems.append(
                f"counter {name}: baseline {base_counters[name]:g}, "
                "missing from run"
            )

    current_gauges = current.get("gauges", {})
    for name, reference in sorted(baseline.get("gauges", {}).items()):
        if not name.endswith(TIME_GAUGE_SUFFIX):
            continue
        if name not in current_gauges:
            problems.append(
                f"gauge {name}: baseline {float(reference):g}s, "
                "missing from run"
            )
            continue
        value = float(current_gauges[name])
        reference = float(reference)
        if reference <= 0.0 or value <= 0.0:
            continue  # degenerate timings carry no signal
        ratio = max(value / reference, reference / value)
        if ratio > time_tolerance:
            problems.append(
                f"gauge {name}: {reference:g}s -> {value:g}s "
                f"({ratio:.1f}x outside {time_tolerance:g}x tolerance)"
            )
    return problems


def _cells_by_key(payload: Dict[str, Any]) -> Dict[tuple, Dict[str, Any]]:
    return {
        (int(cell["n"]), int(cell["k"])): cell
        for cell in payload.get("cells", [])
    }


def check_scaling(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> List[str]:
    """Compare two ``bench-scaling-v1`` documents (empty list = pass).

    Per baseline cell: ``delta.*`` counters must match **exactly** (the
    replay is deterministic, so any drift means the kernels' work
    content changed), per-kernel wall times must stay within
    ``time_tolerance`` (ratio, either direction), and the batched/scalar
    ``speedup`` must meet the cell's committed ``min_speedup`` floor
    (default 1: batched must not be slower than scalar).  Cells present
    only in the current run are informational.
    """
    problems: List[str] = []
    current_cells = _cells_by_key(current)
    for key, base_cell in sorted(_cells_by_key(baseline).items()):
        n, k = key
        label = f"cell n={n} k={k}"
        cell = current_cells.get(key)
        if cell is None:
            problems.append(f"{label}: present in baseline, missing from run")
            continue
        for kernel, base_side in sorted(base_cell.get("kernels", {}).items()):
            side = cell.get("kernels", {}).get(kernel)
            if side is None:
                problems.append(
                    f"{label} kernel {kernel}: present in baseline, "
                    "missing from run"
                )
                continue
            base_counters = base_side.get("counters", {})
            counters = side.get("counters", {})
            for name in sorted(base_counters):
                if name not in counters:
                    problems.append(
                        f"{label} {kernel} counter {name}: baseline "
                        f"{base_counters[name]:g}, missing from run"
                    )
                elif float(counters[name]) != float(base_counters[name]):
                    problems.append(
                        f"{label} {kernel} counter {name}: "
                        f"{base_counters[name]:g} -> {counters[name]:g} "
                        "(deterministic counter drifted)"
                    )
            base_s = float(base_side.get("seconds", 0.0))
            cur_s = float(side.get("seconds", 0.0))
            if base_s > 0.0 and cur_s > 0.0:
                ratio = max(cur_s / base_s, base_s / cur_s)
                if ratio > time_tolerance:
                    problems.append(
                        f"{label} kernel {kernel}: {base_s:g}s -> {cur_s:g}s "
                        f"({ratio:.1f}x outside {time_tolerance:g}x tolerance)"
                    )
        floor = float(base_cell.get("min_speedup", DEFAULT_MIN_SPEEDUP))
        speedup = float(cell.get("speedup", 0.0))
        if speedup < floor:
            batched = cell.get("kernels", {}).get("batched", {}).get("seconds")
            scalar = cell.get("kernels", {}).get("scalar", {}).get("seconds")
            problems.append(
                f"{label} speedup: {speedup:.2f}x < required {floor:g}x "
                f"(batched {batched}s vs scalar {scalar}s)"
            )
    return problems


def update_scaling_baseline(
    current: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """A fresh scaling baseline from ``current``, keeping speedup floors.

    ``min_speedup`` encodes a reviewed performance *requirement*, not a
    measurement, so re-baselining wall times must not erase it: floors
    carry over from the previous baseline per cell; new cells get the
    default floor.
    """
    payload = json.loads(json.dumps(current))  # deep copy
    old_cells = _cells_by_key(previous) if previous else {}
    for cell in payload.get("cells", []):
        old = old_cells.get((int(cell["n"]), int(cell["k"])))
        cell["min_speedup"] = (
            float(old.get("min_speedup", DEFAULT_MIN_SPEEDUP))
            if old
            else DEFAULT_MIN_SPEEDUP
        )
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a metrics snapshot against a committed baseline."
    )
    parser.add_argument("current", help="metrics JSON written by --metrics-out")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed baseline snapshot (benchmarks/baselines/*.json)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="gate against the rolling window of a run-ledger-v1 history "
        "instead of a static baseline (see repro.obs.ledger)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="ledger window size (default: repro.obs.ledger.DEFAULT_WINDOW)",
    )
    parser.add_argument(
        "--counter-tolerance", type=float, default=DEFAULT_COUNTER_TOLERANCE,
        help="allowed relative counter drift (default 0: exact, counters "
        "are deterministic for a fixed seed)",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=DEFAULT_TIME_TOLERANCE,
        help="allowed ratio for *_seconds gauges in either direction "
        f"(default {DEFAULT_TIME_TOLERANCE:g}x: machines differ, "
        "order-of-magnitude regressions do not)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current snapshot and exit 0",
    )
    args = parser.parse_args(argv)
    if (args.baseline is None) == (args.ledger is None):
        parser.error("exactly one of --baseline or --ledger is required")
    if args.update and args.baseline is None:
        parser.error("--update needs --baseline (ledgers grow via --ledger runs)")

    try:
        current = load_snapshot(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"check_bench: unreadable current snapshot: {exc}", file=sys.stderr)
        return 2
    is_scaling = current.get("format") == BENCH_SCALING_FORMAT
    if is_scaling and args.ledger is not None:
        parser.error(
            "bench-scaling-v1 documents gate against a committed --baseline, "
            "not a run ledger"
        )

    if args.update:
        if is_scaling:
            previous = None
            if Path(args.baseline).exists():
                try:
                    previous = load_snapshot(args.baseline)
                except (OSError, ValueError, json.JSONDecodeError):
                    previous = None
            current = update_scaling_baseline(current, previous)
        Path(args.baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.baseline).write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"check_bench: baseline {args.baseline} updated")
        return 0

    if args.ledger is not None:
        from repro.obs.ledger import DEFAULT_WINDOW, read_ledger, window_baseline

        if not Path(args.ledger).exists():
            print(
                f"check_bench: ledger {args.ledger} does not exist; run a "
                "--ledger workload first or gate with --baseline",
                file=sys.stderr,
            )
            return 2
        records = read_ledger(args.ledger)
        baseline = window_baseline(
            records, window=args.window if args.window is not None else DEFAULT_WINDOW
        )
        if baseline is None:
            print(
                f"check_bench: ledger {args.ledger} holds no run-ledger-v1 "
                "records; run a --ledger workload first or gate with --baseline",
                file=sys.stderr,
            )
            return 2
        baseline_label = f"{args.ledger} (window of {len(records)} record(s))"
    else:
        try:
            baseline = load_snapshot(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"check_bench: unreadable baseline: {exc}", file=sys.stderr)
            return 2
        baseline_label = args.baseline
        if baseline.get("format") != current.get("format"):
            print(
                f"check_bench: format mismatch: {args.current} is "
                f"{current.get('format')!r} but {args.baseline} is "
                f"{baseline.get('format')!r}",
                file=sys.stderr,
            )
            return 2

    if is_scaling:
        problems = check_scaling(
            current, baseline, time_tolerance=args.time_tolerance
        )
    else:
        problems = check_bench(
            current,
            baseline,
            counter_tolerance=args.counter_tolerance,
            time_tolerance=args.time_tolerance,
        )
    if problems:
        for problem in problems:
            print(f"check_bench: {problem}", file=sys.stderr)
        print(
            f"check_bench: {len(problems)} problem(s); if intentional, "
            f"re-baseline with --update",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench: {args.current} within tolerance of {baseline_label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
