#!/usr/bin/env python
"""Chaos drill: prove a chaotic interrupted sweep converges to the truth.

The end-to-end robustness acceptance scenario (``docs/ROBUSTNESS.md``):

1. Compute an undisturbed **serial** reference: 6 circuits x Tables
   II+III = 12 rows, in-process, no faults.
2. Launch the same sweep as a child ``repro.eval.run`` process with the
   chaos profile installed via ``REPRO_FAULT_PLAN`` (worker retry /
   crash / hang / corrupt injections), 2 workers, retries and the hang
   watchdog armed, a checkpoint directory, and a JSONL trace - then
   deliver **SIGTERM mid-run**.  The child drains: in-flight circuits
   stop cooperatively, completed rows are already checkpointed, exit
   code 0.
3. Re-run the child with the same checkpoint directory (the resume).
   It skips completed rows and finishes the rest.
4. Assert the resumed rows are **bit-identical** to the reference on
   every deterministic field, that both traces validate against the
   schema gate (``scripts/check_trace.py``), and that the merged event
   stream shows exactly the injected degradation paths (retry events
   with the right failure kinds, integrity rejections) and nothing
   unexplained.

Exit codes: 0 drill passed, 1 assertion failed, 2 child run failed.

Usage (CI chaos job)::

    PYTHONPATH=src python scripts/chaos_drill.py --workdir /tmp/drill
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_trace import check_trace  # noqa: E402

from repro.eval.harness import run_table  # noqa: E402
from repro.eval.workloads import workload_names  # noqa: E402

# All four worker fault sites on the first two tasks of each table
# fan-out; attempt-0 rules are cured by the first retry, attempt-1
# rules by the second, so a policy of 3 attempts heals everything.
CHAOS_PROFILE = (
    "worker.retry:fail:tasks=0:attempts=0;"
    "worker.crash:fail:tasks=0:attempts=1;"
    "worker.hang:slow:tasks=1:seconds=30:attempts=0;"
    "worker.corrupt:fail:tasks=1:attempts=1"
)

# The degradation paths the profile must produce: task -> failure kinds
# its retry events may carry.  Anything outside this map is unexplained.
EXPECTED_RETRY_KINDS = {0: {"error", "crash"}, 1: {"hang", "integrity"}}

DETERMINISTIC_FIELDS = (
    "name",
    "with_timing",
    "start_cost",
    "qbp_cost",
    "qbp_improvement",
    "gfm_cost",
    "gfm_improvement",
    "gkl_cost",
    "gkl_improvement",
    "all_feasible",
    "stop_reason",
)


def deterministic(row: dict) -> tuple:
    return tuple(row[field] for field in DETERMINISTIC_FIELDS)


def reference_rows(circuits, scale, iterations, seed) -> dict:
    """The undisturbed serial truth, computed in-process (no faults)."""
    tables = {}
    for table in (2, 3):
        rows = run_table(
            table,
            scale=scale,
            qbp_iterations=iterations,
            circuits=circuits,
            seed=seed,
            workers=1,
        )
        tables[f"table{table}"] = [row.to_dict() for row in rows]
    return tables


def child_command(args, out_json, trace, checkpoint_dir):
    return [
        sys.executable,
        "-m",
        "repro.eval.run",
        "--table",
        "all",
        "--no-paper",
        "--scale",
        str(args.scale),
        "--iterations",
        str(args.iterations),
        "--circuits",
        *args.circuits,
        "--seed",
        str(args.seed),
        "--workers",
        "2",
        "--retries",
        "3",
        "--task-timeout",
        str(args.task_timeout),
        "--checkpoint-dir",
        str(checkpoint_dir),
        "--json",
        str(out_json),
        "--trace",
        str(trace),
    ]


def run_child(args, out_json, trace, checkpoint_dir, *, sigterm_after=None):
    env = dict(os.environ)
    env["REPRO_FAULT_PLAN"] = CHAOS_PROFILE
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parents[1] / "src"))
    proc = subprocess.Popen(
        child_command(args, out_json, trace, checkpoint_dir),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    if sigterm_after is not None:
        time.sleep(sigterm_after)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)  # first signal: drain
    try:
        output, _ = proc.communicate(timeout=args.child_timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        output, _ = proc.communicate()
        return 124, output
    return proc.returncode, output


def trace_events(path) -> list:
    events = []
    path = Path(path)
    if not path.exists():
        return events
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "event":
            events.append(record)
    return events


def audit_degradation(events) -> list:
    """Problems with the merged chaotic event stream (empty = ok)."""
    problems = []
    retries = [e for e in events if e["event"] == "retry"]
    rejects = [e for e in events if e["event"] == "integrity"]
    seen_kinds = set()
    for event in retries:
        allowed = EXPECTED_RETRY_KINDS.get(event["task"])
        if allowed is None or event["failure_kind"] not in allowed:
            problems.append(
                f"unexplained retry: task {event['task']} "
                f"kind {event['failure_kind']!r}"
            )
        seen_kinds.add(event["failure_kind"])
    missing = {"error", "crash", "hang", "integrity"} - seen_kinds
    if missing:
        problems.append(f"injected degradation paths never fired: {sorted(missing)}")
    for event in rejects:
        if event["task"] != 1:
            problems.append(f"unexplained integrity reject: task {event['task']}")
    if not rejects:
        problems.append("no integrity rejection recorded for worker.corrupt")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None, help="scratch dir (default: temp)")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--circuits",
        nargs="*",
        # cktc's bootstrap repair is disproportionately slow at small
        # scales; the other six keep the 12-row drill under a minute.
        default=[n for n in workload_names() if n != "cktc"],
        help="6 circuits x tables II+III = the 12-row acceptance sweep",
    )
    parser.add_argument(
        "--sigterm-after", type=float, default=3.0,
        help="seconds into the chaos run to deliver SIGTERM",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=10.0,
        help="hang watchdog deadline; must exceed the longest stretch a "
        "healthy solve goes between budget checks (its heartbeats), "
        "while staying well under the 30s injected wedge",
    )
    parser.add_argument("--child-timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp(prefix="chaos-drill-"))
    workdir.mkdir(parents=True, exist_ok=True)
    checkpoint_dir = workdir / "checkpoints"
    print(f"chaos drill: workdir {workdir}")

    print(f"[1/4] undisturbed serial reference ({len(args.circuits)} circuits x 2 tables)")
    reference = reference_rows(args.circuits, args.scale, args.iterations, args.seed)
    total_rows = sum(len(rows) for rows in reference.values())
    print(f"      {total_rows} reference rows")

    print(f"[2/4] chaos run (profile: {CHAOS_PROFILE}), SIGTERM at +{args.sigterm_after}s")
    code, output = run_child(
        args,
        workdir / "interrupted.json",
        workdir / "trace-interrupted.jsonl",
        checkpoint_dir,
        sigterm_after=args.sigterm_after,
    )
    if code != 0:
        print(output)
        print(f"chaos drill: FAIL - interrupted run exited {code}, expected drain to 0")
        return 2
    drained = "interrupted by signal" in output

    print(f"[3/4] resume with the same checkpoint dir (drained={drained})")
    code, output = run_child(
        args,
        workdir / "resumed.json",
        workdir / "trace-resumed.jsonl",
        checkpoint_dir,
    )
    if code != 0:
        print(output)
        print(f"chaos drill: FAIL - resume run exited {code}")
        return 2

    print("[4/4] verify bit-identity, trace schema, and degradation paths")
    problems = []
    resumed = json.loads((workdir / "resumed.json").read_text())
    for table_key, ref_rows in reference.items():
        got_rows = resumed.get(table_key, [])
        want = [deterministic(r) for r in ref_rows]
        got = [deterministic(r) for r in got_rows]
        if want != got:
            problems.append(
                f"{table_key}: resumed rows differ from the undisturbed "
                f"serial reference ({len(got)}/{len(want)} rows)"
            )
    for trace in ("trace-interrupted.jsonl", "trace-resumed.jsonl"):
        problems.extend(
            f"{trace}: {p}"
            for p in check_trace(workdir / trace, min_spans=1, min_events=1)
        )
    merged = trace_events(workdir / "trace-interrupted.jsonl") + trace_events(
        workdir / "trace-resumed.jsonl"
    )
    problems.extend(audit_degradation(merged))

    if problems:
        for problem in problems:
            print(f"  FAIL {problem}")
        print(f"chaos drill: FAIL ({len(problems)} problem(s))")
        return 1
    retry_count = sum(1 for e in merged if e["event"] == "retry")
    print(
        f"chaos drill: PASS - {total_rows} rows bit-identical after "
        f"SIGTERM+resume; {retry_count} retries healed "
        f"({', '.join(sorted({e['failure_kind'] for e in merged if e['event'] == 'retry'}))})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
