#!/usr/bin/env python
"""End-to-end smoke test of the partitioning service (CI job).

Boots a real server subprocess, then checks the service contract from
the outside, exactly as a client would see it:

1. the same small problem submitted twice returns **bit-identical**
   results, with the second served from the content-addressed cache
   (``service.cache_hits == 1``, one actual solve),
2. ``/metrics`` exposes a ``metrics-snapshot-v1`` document plus cache
   and queue stats, and ``/healthz`` answers with the package version,
3. SIGTERM drains: in-flight work settles, the process exits 0.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--keep-output]

Exits non-zero with a one-line reason on the first violated check.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.netlist.generate import (  # noqa: E402
    ClusteredCircuitSpec,
    generate_clustered_circuit,
)
from repro.netlist.io import circuit_to_dict  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402


def fail(reason: str) -> "int":
    print(f"service_smoke: FAIL: {reason}", file=sys.stderr)
    return 1


def wait_for_banner(process: subprocess.Popen, timeout: float = 30.0) -> str:
    """Read the server's 'serving on URL' banner; returns the URL."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise RuntimeError(
                    f"server exited early with code {process.returncode}"
                )
            time.sleep(0.05)
            continue
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return match.group(1)
    raise RuntimeError("server never printed its serving banner")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to serve on (default 0 = ephemeral)",
    )
    args = parser.parse_args()

    spec = ClusteredCircuitSpec("smoke", num_components=16, num_wires=40)
    request = {
        "circuit": circuit_to_dict(generate_clustered_circuit(spec, seed=0)),
        "grid": [2, 2],
        "solver": "qbp",
        "iterations": 5,
        "seed": 0,
    }

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.tools.servectl", "serve",
            "--port", str(args.port), "--queue-depth", "4", "--threads", "1",
        ],
        env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        url = wait_for_banner(process)
        print(f"service_smoke: server up at {url}")
        client = ServiceClient(url)

        first = client.solve(request)
        second = client.solve(request)
        if first != second:
            return fail("second identical request was not bit-identical")
        if first.get("stop_reason") != "completed":
            return fail(f"unexpected stop_reason {first.get('stop_reason')!r}")
        print("service_smoke: results bit-identical across the cache")

        metrics = client.metrics()
        snapshot = metrics.get("snapshot", {})
        if snapshot.get("format") != "metrics-snapshot-v1":
            return fail("metrics snapshot is not metrics-snapshot-v1")
        counters = snapshot.get("counters", {})
        if counters.get("service.cache_hits") != 1:
            return fail(
                f"expected service.cache_hits == 1, got "
                f"{counters.get('service.cache_hits')}"
            )
        if counters.get("service.completed") != 1:
            return fail(
                f"expected exactly one solve, got "
                f"{counters.get('service.completed')} completions"
            )
        if metrics.get("cache", {}).get("entries") != 1:
            return fail("cache should hold exactly one entry")
        print("service_smoke: metrics report 1 solve, 1 cache hit")

        health = client.health()
        if health.get("status") != "ok":
            return fail(f"health status {health.get('status')!r}")
        if not health.get("version"):
            return fail("health document is missing the package version")
        print(f"service_smoke: healthy (version {health['version']})")

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            return fail("server did not exit within 30s of SIGTERM")
        if code != 0:
            return fail(f"server exited {code} after SIGTERM (expected 0)")
        print("service_smoke: SIGTERM drained cleanly, exit 0")
        print("service_smoke: OK")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
        remainder = process.stdout.read()
        if remainder:
            sys.stdout.write(remainder)


if __name__ == "__main__":
    raise SystemExit(main())
