#!/usr/bin/env python
"""Layering and import-cycle check for the ``repro`` package (stdlib only).

Two properties are enforced, both load-bearing for the engine refactor:

1. **Layering** — foundation packages must not import from the layers
   built on top of them.  In particular ``repro.core`` and
   ``repro.engine`` must import nothing from ``repro.solvers``,
   ``repro.baselines`` or ``repro.eval`` (the engine is *below* the
   algorithms; see docs/ARCHITECTURE.md).
2. **Acyclicity** — the module-level import graph of ``repro`` contains
   no cycles.

Usage::

    python scripts/check_imports.py [--root src/repro]

Exits non-zero with a report when either property is violated.  Runs
without importing the package (pure AST), so it is safe in any
environment and is wired into CI next to the test jobs.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

# Each entry: packages that may NOT be imported (directly, at module
# level or inside functions) from modules under the key package.
FORBIDDEN = {
    "repro.core": (
        "repro.engine",
        "repro.solvers",
        "repro.baselines",
        "repro.eval",
        "repro.parallel",
        "repro.runtime",
        "repro.obs",
        "repro.tools",
        "repro.apps",
        "repro.service",
    ),
    "repro.engine": (
        "repro.solvers",
        "repro.baselines",
        "repro.eval",
        "repro.tools",
        "repro.apps",
        "repro.service",
    ),
    "repro.solvers": (
        "repro.eval",
        "repro.tools",
        "repro.apps",
        "repro.service",
    ),
    "repro.baselines": (
        "repro.eval",
        "repro.tools",
        "repro.apps",
        "repro.service",
    ),
    # The pipeline wires solver implementations to registry names; it
    # sits above solvers/baselines and below every consumer package.
    "repro.pipeline": (
        "repro.eval",
        "repro.tools",
        "repro.apps",
        "repro.service",
    ),
    # Consumer packages dispatch through repro.pipeline only - never
    # import a solver implementation directly.
    "repro.tools": ("repro.solvers", "repro.baselines"),
    "repro.eval": ("repro.solvers", "repro.baselines"),
    # The service builds on the pipeline but must not reach into the
    # consumers beside it (the CLI servectl sits in tools/, above).
    "repro.service": (
        "repro.eval",
        "repro.tools",
        "repro.apps",
        "repro.solvers",
        "repro.baselines",
    ),
}


def module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to ``root``'s parent."""
    rel = path.relative_to(root.parent).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def imports_of(path: Path, current_package: str) -> set[str]:
    """All absolute ``repro.*`` module names imported by ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import - resolve against the package
                base = current_package.split(".")
                if node.level > 1:
                    base = base[: -(node.level - 1)]
                prefix = ".".join(base)
                target = f"{prefix}.{node.module}" if node.module else prefix
            else:
                target = node.module or ""
            if target.startswith("repro"):
                found.add(target)
    return found


def build_graph(root: Path) -> dict[str, set[str]]:
    graph: dict[str, set[str]] = {}
    for path in sorted(root.rglob("*.py")):
        name = module_name(path, root)
        package = name if path.name == "__init__.py" else name.rsplit(".", 1)[0]
        graph[name] = imports_of(path, package)
    return graph


def check_layering(graph: dict[str, set[str]]) -> list[str]:
    errors = []
    for module, imported in sorted(graph.items()):
        for package, banned in FORBIDDEN.items():
            if not (module == package or module.startswith(package + ".")):
                continue
            for target in sorted(imported):
                if any(
                    target == b or target.startswith(b + ".") for b in banned
                ):
                    errors.append(
                        f"layering violation: {module} imports {target} "
                        f"(forbidden for {package})"
                    )
    return errors


def check_cycles(graph: dict[str, set[str]]) -> list[str]:
    """DFS cycle detection over the intra-``repro`` import graph."""
    # Normalise edges to known module names (an import of a package
    # attribute like ``repro.core.assignment`` stays as the module).
    known = set(graph)

    def resolve(target: str) -> str | None:
        while target and target not in known:
            if "." not in target:
                return None
            target = target.rsplit(".", 1)[0]
        return target or None

    edges = {
        module: {
            resolved
            for t in imported
            if (resolved := resolve(t)) is not None and resolved != module
        }
        for module, imported in graph.items()
    }

    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(edges, WHITE)
    stack: list[str] = []
    cycles: list[str] = []

    def visit(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(edges[node]):
            if color[nxt] == GREY:
                start = stack.index(nxt)
                cycles.append(" -> ".join(stack[start:] + [nxt]))
            elif color[nxt] == WHITE:
                visit(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(edges):
        if color[node] == WHITE:
            visit(node)
    return [f"import cycle: {c}" for c in cycles]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "src" / "repro",
        help="package root to scan (default: src/repro)",
    )
    args = parser.parse_args()
    graph = build_graph(args.root)
    errors = check_layering(graph) + check_cycles(graph)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} import-hygiene error(s)", file=sys.stderr)
        return 1
    print(
        f"import hygiene OK: {len(graph)} modules, no layering violations, "
        "no cycles"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
