#!/usr/bin/env python
"""Validate a combined JSONL telemetry trace against the schema.

Reusable gate for CI and local runs: every line must be a valid span or
event record (see ``repro.obs.events.validate_trace_line`` and
``docs/OBSERVABILITY.md``).  Optionally also enforces minimum content,
so a smoke run can assert the trace is not just well-formed but
*populated*::

    python scripts/check_trace.py out.jsonl --min-spans 3 --require-span partition

Exit codes: 0 valid, 1 schema violation or unmet requirement, 2 unreadable
input.  Needs ``src`` on ``PYTHONPATH`` (or the package installed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.events import validate_trace_line


def check_trace(
    path,
    *,
    min_spans: int = 0,
    min_events: int = 0,
    require_spans: Optional[List[str]] = None,
) -> List[str]:
    """Validate the trace at ``path``; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    spans = 0
    events = 0
    names = set()
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = validate_trace_line(line)
        except ValueError as exc:
            problems.append(f"line {lineno}: {exc}")
            continue
        if record["type"] == "span":
            spans += 1
            names.add(record["name"])
        elif record["type"] == "event":
            events += 1
        # "meta" records (epoch/clock header) count as neither.
    if spans < min_spans:
        problems.append(f"expected >= {min_spans} spans, found {spans}")
    if events < min_events:
        problems.append(f"expected >= {min_events} events, found {events}")
    for required in require_spans or []:
        if required not in names:
            problems.append(f"required span {required!r} not present")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Schema-validate a combined JSONL telemetry trace."
    )
    parser.add_argument("trace", help="trace file written by a --trace flag")
    parser.add_argument(
        "--min-spans", type=int, default=1,
        help="fail unless at least this many span lines exist (default 1)",
    )
    parser.add_argument(
        "--min-events", type=int, default=0,
        help="fail unless at least this many event lines exist (default 0)",
    )
    parser.add_argument(
        "--require-span", action="append", default=None, metavar="NAME",
        help="fail unless a span with this exact name exists (repeatable)",
    )
    args = parser.parse_args(argv)
    problems = check_trace(
        args.trace,
        min_spans=args.min_spans,
        min_events=args.min_events,
        require_spans=args.require_span,
    )
    if problems:
        unreadable = any(p.startswith("unreadable:") for p in problems)
        for problem in problems:
            print(f"check_trace: {problem}", file=sys.stderr)
        return 2 if unreadable else 1
    print(f"check_trace: {args.trace} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
