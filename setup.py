"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e . --no-use-pep517`` works in offline environments
without the ``wheel`` package installed.
"""

from setuptools import setup

setup()
